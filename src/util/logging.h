// Minimal leveled logging with a pluggable writer.
//
// Usage: CQLOG(kInfo) << "built decomposition of width " << w;
// The default threshold is kWarning; benchmarks and examples raise it.
//
// Statements route through one process-wide LogWriter (stderr by
// default). Embedders — the future counting server capturing logs per
// request, tests asserting on log output — swap the writer with
// SetLogWriter; formatting (level tag, file:line prefix) happens before
// the writer sees the line, so writers only deal in finished strings.
#ifndef CQCOUNT_UTIL_LOGGING_H_
#define CQCOUNT_UTIL_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>

namespace cqcount {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
/// Returns the global minimum emitted level.
LogLevel GetLogLevel();

/// Receives one formatted log line (no trailing newline). Must be safe to
/// call from any thread: the logging layer serialises calls under an
/// internal mutex, but the writer itself may outlive any scope it
/// captures, so capture by value.
using LogWriter = std::function<void(LogLevel, const std::string& line)>;

/// Replaces the process-wide writer (nullptr restores the stderr
/// default). Returns the previous writer so scoped capture can restore
/// it.
LogWriter SetLogWriter(LogWriter writer);

namespace internal {

/// Accumulates one log statement and flushes it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace cqcount

#define CQLOG(level)                                                     \
  ::cqcount::internal::LogMessage(::cqcount::LogLevel::level, __FILE__, \
                                  __LINE__)

#endif  // CQCOUNT_UTIL_LOGGING_H_
