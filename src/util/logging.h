// Minimal leveled logging to stderr.
//
// Usage: CQLOG(kInfo) << "built decomposition of width " << w;
// The default threshold is kWarning; benchmarks and examples raise it.
#ifndef CQCOUNT_UTIL_LOGGING_H_
#define CQCOUNT_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace cqcount {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
/// Returns the global minimum emitted level.
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log statement and flushes it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace cqcount

#define CQLOG(level)                                                     \
  ::cqcount::internal::LogMessage(::cqcount::LogLevel::level, __FILE__, \
                                  __LINE__)

#endif  // CQCOUNT_UTIL_LOGGING_H_
