#include "util/math_util.h"

#include <algorithm>
#include <cassert>

namespace cqcount {

int Log2Ceil(uint64_t x) {
  if (x <= 1) return 0;
  return 64 - __builtin_clzll(x - 1);
}

int Log2Floor(uint64_t x) {
  assert(x >= 1);
  return 63 - __builtin_clzll(x);
}

double Median(std::vector<double>& values) {
  assert(!values.empty());
  const size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  double hi = values[mid];
  if (values.size() % 2 == 1) return hi;
  double lo = *std::max_element(values.begin(), values.begin() + mid);
  return 0.5 * (lo + hi);
}

void MeanVarAccumulator::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double MeanVarAccumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double MeanVarAccumulator::mean_variance() const {
  if (count_ == 0) return 0.0;
  return variance() / static_cast<double>(count_);
}

double BinomialDouble(int n, int k) {
  if (k < 0 || k > n) return 0.0;
  k = std::min(k, n - k);
  double result = 1.0;
  for (int i = 1; i <= k; ++i) {
    result *= static_cast<double>(n - k + i) / static_cast<double>(i);
  }
  return result;
}

}  // namespace cqcount
