#include "util/bitset.h"

#include <algorithm>

namespace cqcount {
namespace {

int Popcount(uint64_t w) { return __builtin_popcountll(w); }
int CountTrailingZeros(uint64_t w) { return __builtin_ctzll(w); }

}  // namespace

void Bitset::Assign(size_t n, bool value) {
  num_bits_ = n;
  words_.assign((n + kWordBits - 1) / kWordBits,
                value ? ~uint64_t{0} : uint64_t{0});
  ClearTail();
}

void Bitset::Resize(size_t n, bool value) {
  const size_t old_bits = num_bits_;
  if (n == old_bits) return;
  if (n < old_bits) {
    num_bits_ = n;
    words_.resize((n + kWordBits - 1) / kWordBits);
    ClearTail();
    return;
  }
  words_.resize((n + kWordBits - 1) / kWordBits, 0);
  num_bits_ = n;
  if (value) {
    // The grown region is [old_bits, n); fill it bit-exactly.
    SetRange(old_bits, n);
  }
}

void Bitset::SetRange(size_t lo, size_t hi) {
  assert(hi <= num_bits_ && lo <= hi);
  if (lo >= hi) return;
  const size_t first_word = lo / kWordBits;
  const size_t last_word = (hi - 1) / kWordBits;
  const uint64_t lo_mask = ~uint64_t{0} << (lo % kWordBits);
  const uint64_t hi_mask =
      ~uint64_t{0} >> (kWordBits - 1 - (hi - 1) % kWordBits);
  if (first_word == last_word) {
    words_[first_word] |= lo_mask & hi_mask;
    return;
  }
  words_[first_word] |= lo_mask;
  for (size_t w = first_word + 1; w < last_word; ++w) words_[w] = ~uint64_t{0};
  words_[last_word] |= hi_mask;
}

size_t Bitset::Count() const {
  size_t count = 0;
  for (uint64_t w : words_) count += static_cast<size_t>(Popcount(w));
  return count;
}

void Bitset::FlipAll() {
  for (uint64_t& w : words_) w = ~w;
  ClearTail();
}

void Bitset::IntersectWith(const Bitset& other) {
  const size_t shared = std::min(words_.size(), other.words_.size());
  for (size_t w = 0; w < shared; ++w) words_[w] &= other.words_[w];
  for (size_t w = shared; w < words_.size(); ++w) words_[w] = 0;
  // Bits of the shared boundary word beyond other's universe read as 0 in
  // other.words_ already (its tail is clear), so no extra masking needed.
}

void Bitset::IntersectWithComplement(const Bitset& other) {
  const size_t shared = std::min(words_.size(), other.words_.size());
  for (size_t w = 0; w < shared; ++w) words_[w] &= ~other.words_[w];
  // Beyond other's universe ~0 keeps our bits: nothing to do. The shared
  // boundary word's tail bits of `other` are clear, so ~ sets them — but
  // only within positions past other's size, which is the intended "absent
  // from other" reading; our own tail invariant still holds because our
  // tail bits were already clear.
}

size_t Bitset::FindNext(size_t from) const {
  if (from >= num_bits_) return num_bits_;
  size_t w = from / kWordBits;
  uint64_t word = words_[w] & (~uint64_t{0} << (from % kWordBits));
  for (;;) {
    if (word != 0) {
      return w * kWordBits + static_cast<size_t>(CountTrailingZeros(word));
    }
    if (++w == words_.size()) return num_bits_;
    word = words_[w];
  }
}

}  // namespace cqcount
