#include "util/executor.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "obs/metrics.h"
#include "util/failpoint.h"

namespace cqcount {
namespace {

// Registry mirrors of the pool's own atomic counters (aggregated across
// every pool in the process) plus a live queue-depth gauge; fed per task
// at submit/dequeue, which is far coarser than any sampling loop.
struct ExecutorMetrics {
  obs::Counter& submitted = obs::MetricRegistry::Global().GetCounter(
      "executor.tasks_submitted", "Closures submitted to any worker pool");
  obs::Counter& executed = obs::MetricRegistry::Global().GetCounter(
      "executor.tasks_executed", "Closures executed by pool worker threads");
  obs::Counter& help_runs = obs::MetricRegistry::Global().GetCounter(
      "executor.help_runs",
      "Closures executed by threads help-draining inside Wait/ParallelFor*");
  obs::Counter& lane_loops = obs::MetricRegistry::Global().GetCounter(
      "executor.lane_loops",
      "ParallelForLanes invocations (one lane-partitioned index space)");
  obs::Gauge& queue_depth = obs::MetricRegistry::Global().GetGauge(
      "executor.queue_depth", "Closures queued but not yet started, all pools");

  static ExecutorMetrics& Get() {
    static ExecutorMetrics* metrics = new ExecutorMetrics();
    return *metrics;
  }
};

// Eager registration at load: every metric name appears in `stats` JSON
// (schema validation) even on code paths that never touch it.
[[maybe_unused]] const ExecutorMetrics& kExecutorMetricsInit = ExecutorMetrics::Get();

}  // namespace

Executor::Executor(int num_threads) {
  num_threads = std::max(1, num_threads);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void Executor::Submit(std::function<void()> task) {
  // Fault-injection site: degrades a spawn to inline execution on the
  // caller (the task completes before Submit returns, so in_flight and
  // Wait() semantics stay consistent — no leaked lane state).
  if (failpoint::ShouldFail("executor.spawn")) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  ExecutorMetrics::Get().submitted.Increment();
  ExecutorMetrics::Get().queue_depth.Add(1);
  work_cv_.notify_one();
  // Wake Wait()ers too: they help-drain, so new work concerns them.
  idle_cv_.notify_all();
}

void Executor::FinishTask() {
  std::lock_guard<std::mutex> lock(mu_);
  if (--in_flight_ == 0) idle_cv_.notify_all();
}

bool Executor::RunOneQueuedTask() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop();
  }
  help_runs_.fetch_add(1, std::memory_order_relaxed);
  ExecutorMetrics::Get().help_runs.Increment();
  ExecutorMetrics::Get().queue_depth.Add(-1);
  task();
  FinishTask();
  return true;
}

void Executor::Wait() {
  for (;;) {
    if (RunOneQueuedTask()) continue;
    std::unique_lock<std::mutex> lock(mu_);
    if (in_flight_ == 0) return;
    if (!queue_.empty()) continue;  // Raced with a Submit: drain it.
    idle_cv_.wait(lock,
                  [this] { return in_flight_ == 0 || !queue_.empty(); });
    if (in_flight_ == 0) return;
  }
}

void Executor::ParallelFor(size_t num_tasks,
                           const std::function<void(size_t)>& task) {
  ParallelForLanes(num_tasks, num_threads() + 1,
                   [&task](int, size_t i) { task(i); });
}

Executor::LaneStats Executor::ParallelForLanes(
    size_t num_tasks, int num_lanes,
    const std::function<void(int, size_t)>& task) {
  LaneStats stats;
  if (num_tasks == 0) return stats;
  num_lanes = std::max(1, num_lanes);
  ExecutorMetrics::Get().lane_loops.Increment();

  // Per-call control block, shared with the helper closures (which may
  // outlive this frame by a few instructions after the last completion).
  struct Control {
    std::function<void(int, size_t)> task;
    size_t num_tasks = 0;
    std::atomic<size_t> next{0};
    std::atomic<uint64_t> worker_ran{0};
    std::mutex mu;
    std::condition_variable done_cv;
    size_t completed = 0;  // Guarded by mu.
  };
  auto control = std::make_shared<Control>();
  control->task = task;
  control->num_tasks = num_tasks;

  // One claim-loop per lane: runs indices until the space is exhausted.
  // Returns the number of indices this lane executed. Worker lanes
  // publish their tally into worker_ran BEFORE signalling completion, so
  // the caller's LaneStats never under-counts.
  auto run_lane = [](Control& c, int lane) -> uint64_t {
    uint64_t ran = 0;
    for (;;) {
      const size_t i = c.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= c.num_tasks) break;
      c.task(lane, i);
      ++ran;
    }
    if (ran > 0) {
      if (lane != 0) c.worker_ran.fetch_add(ran, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(c.mu);
      c.completed += ran;
      if (c.completed == c.num_tasks) c.done_cv.notify_all();
    }
    return ran;
  };

  // Helpers for lanes 1..num_lanes-1 (no point spawning more helpers than
  // indices). Lane 0 is the calling thread.
  const int helpers =
      static_cast<int>(std::min<size_t>(num_tasks, num_lanes) - 1);
  for (int lane = 1; lane <= helpers; ++lane) {
    Submit([control, run_lane, lane] { run_lane(*control, lane); });
  }
  stats.caller_ran = run_lane(*control, 0);

  // Wait for helper-claimed indices. This cannot deadlock even with the
  // pool fully saturated: the caller's own claim loop above drives the
  // whole index space if no helper ever gets a worker, so any index
  // still outstanding here was claimed by a helper that is RUNNING on
  // some thread — and running lanes always terminate. (Still-queued
  // helpers find the space exhausted and exit immediately.)
  {
    std::unique_lock<std::mutex> lock(control->mu);
    control->done_cv.wait(
        lock, [&] { return control->completed == control->num_tasks; });
  }
  stats.worker_ran = control->worker_ran.load(std::memory_order_relaxed);
  return stats;
}

Executor::StatsSnapshot Executor::stats() const {
  StatsSnapshot snapshot;
  snapshot.submitted = submitted_.load(std::memory_order_relaxed);
  snapshot.executed = executed_.load(std::memory_order_relaxed);
  snapshot.help_runs = help_runs_.load(std::memory_order_relaxed);
  return snapshot;
}

void Executor::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // Shutdown with a drained queue.
      task = std::move(queue_.front());
      queue_.pop();
    }
    executed_.fetch_add(1, std::memory_order_relaxed);
    ExecutorMetrics::Get().executed.Increment();
    ExecutorMetrics::Get().queue_depth.Add(-1);
    task();
    FinishTask();
  }
}

}  // namespace cqcount
