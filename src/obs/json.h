// Minimal streaming JSON writer for the telemetry exports (metrics
// snapshots, Chrome traces, per-query profiles, `--json` CLI output).
//
// Comma placement is handled by the writer; callers just alternate
// Key()/value calls inside objects and value calls inside arrays. Not a
// parser and not validating — the emitting code is trusted to balance
// Begin/End calls (asserted in debug builds).
#ifndef CQCOUNT_OBS_JSON_H_
#define CQCOUNT_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cqcount {
namespace obs {

class JsonWriter {
 public:
  JsonWriter& BeginObject() { return Open('{'); }
  JsonWriter& EndObject() { return Close('}'); }
  JsonWriter& BeginArray() { return Open('['); }
  JsonWriter& EndArray() { return Close(']'); }

  /// Emits `"name":` — must be followed by exactly one value call.
  JsonWriter& Key(const std::string& name);

  JsonWriter& String(const std::string& value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Uint(uint64_t value);
  /// Shortest round-trip formatting; NaN/inf degrade to null.
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();
  /// Embeds `json` verbatim as one value (must itself be valid JSON —
  /// used to compose pre-rendered sub-documents like profile JSON).
  JsonWriter& RawValue(const std::string& json);

  /// The finished document (writer is left in a moved-from state).
  std::string Take() { return std::move(out_); }
  const std::string& str() const { return out_; }

 private:
  JsonWriter& Open(char c);
  JsonWriter& Close(char c);
  /// Emits the separating comma when a value follows a sibling value.
  void BeforeValue();
  void Raw(const std::string& s);

  std::string out_;
  /// true = a value was already written at this nesting level.
  std::vector<bool> has_sibling_{false};
  bool after_key_ = false;
};

/// Escapes `s` for embedding in a JSON string literal (no quotes added).
std::string JsonEscape(const std::string& s);

}  // namespace obs
}  // namespace cqcount

#endif  // CQCOUNT_OBS_JSON_H_
