#include "obs/json.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace cqcount {
namespace obs {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (has_sibling_.back()) out_ += ',';
  has_sibling_.back() = true;
}

void JsonWriter::Raw(const std::string& s) {
  BeforeValue();
  out_ += s;
}

JsonWriter& JsonWriter::Open(char c) {
  BeforeValue();
  out_ += c;
  has_sibling_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::Close(char c) {
  assert(has_sibling_.size() > 1 && "unbalanced Begin/End");
  has_sibling_.pop_back();
  out_ += c;
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& name) {
  if (has_sibling_.back()) out_ += ',';
  has_sibling_.back() = true;
  out_ += '"';
  out_ += JsonEscape(name);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& value) {
  Raw("\"" + JsonEscape(value) + "\"");
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  Raw(std::to_string(value));
  return *this;
}

JsonWriter& JsonWriter::Uint(uint64_t value) {
  Raw(std::to_string(value));
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  if (!std::isfinite(value)) {
    Raw("null");
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  // Trim to the shortest representation that round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char candidate[32];
    std::snprintf(candidate, sizeof candidate, "%.*g", precision, value);
    double parsed = 0.0;
    std::sscanf(candidate, "%lf", &parsed);
    if (parsed == value) {
      Raw(candidate);
      return *this;
    }
  }
  Raw(buf);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  Raw(value ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Null() {
  Raw("null");
  return *this;
}

JsonWriter& JsonWriter::RawValue(const std::string& json) {
  Raw(json);
  return *this;
}

}  // namespace obs
}  // namespace cqcount
