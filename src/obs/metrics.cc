#include "obs/metrics.h"

#include <algorithm>
#include <cassert>

#include "obs/json.h"

namespace cqcount {
namespace obs {
namespace internal {

size_t ThisThreadShard() {
  static std::atomic<unsigned> next_thread{0};
  thread_local const unsigned id =
      next_thread.fetch_add(1, std::memory_order_relaxed);
  return id % kShards;
}

}  // namespace internal

Histogram::Snapshot Histogram::Snap() const {
  Snapshot snap;
  for (const auto& cell : cells_) {
    for (int b = 0; b < kBuckets; ++b) {
      const uint64_t n = cell.buckets[b].load(std::memory_order_relaxed);
      snap.buckets[b] += n;
      snap.count += n;
    }
    snap.sum += cell.sum.load(std::memory_order_relaxed);
  }
  return snap;
}

void Histogram::Reset() {
  for (auto& cell : cells_) {
    for (auto& bucket : cell.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
    cell.sum.store(0, std::memory_order_relaxed);
  }
}

struct MetricRegistry::Entry {
  std::string name;
  std::string description;
  MetricKind kind;
  Counter counter;
  Gauge gauge;
  Histogram histogram;
};

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

MetricRegistry::Entry& MetricRegistry::GetOrCreate(
    const std::string& name, const std::string& description, MetricKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& entry : entries_) {
    if (entry->name == name) {
      assert(entry->kind == kind && "metric re-registered with another kind");
      return *entry;
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->description = description;
  entry->kind = kind;
  entries_.push_back(std::move(entry));
  return *entries_.back();
}

Counter& MetricRegistry::GetCounter(const std::string& name,
                                    const std::string& description) {
  return GetOrCreate(name, description, MetricKind::kCounter).counter;
}

Gauge& MetricRegistry::GetGauge(const std::string& name,
                                const std::string& description) {
  return GetOrCreate(name, description, MetricKind::kGauge).gauge;
}

Histogram& MetricRegistry::GetHistogram(const std::string& name,
                                        const std::string& description) {
  return GetOrCreate(name, description, MetricKind::kHistogram).histogram;
}

std::vector<MetricSnapshot> MetricRegistry::Snapshot() const {
  std::vector<MetricSnapshot> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(entries_.size());
    for (const auto& entry : entries_) {
      MetricSnapshot snap;
      snap.name = entry->name;
      snap.description = entry->description;
      snap.kind = entry->kind;
      switch (entry->kind) {
        case MetricKind::kCounter:
          snap.value = static_cast<int64_t>(entry->counter.Value());
          break;
        case MetricKind::kGauge:
          snap.value = entry->gauge.Value();
          break;
        case MetricKind::kHistogram:
          snap.histogram = entry->histogram.Snap();
          break;
      }
      out.push_back(std::move(snap));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

std::string MetricRegistry::ToJson() const {
  JsonWriter json;
  json.BeginObject();
  json.Key("metrics");
  json.BeginArray();
  for (const MetricSnapshot& snap : Snapshot()) {
    json.BeginObject();
    json.Key("name").String(snap.name);
    json.Key("kind").String(snap.kind == MetricKind::kCounter ? "counter"
                            : snap.kind == MetricKind::kGauge ? "gauge"
                                                              : "histogram");
    json.Key("description").String(snap.description);
    if (snap.kind == MetricKind::kHistogram) {
      json.Key("count").Uint(snap.histogram.count);
      json.Key("sum").Uint(snap.histogram.sum);
      json.Key("buckets");
      json.BeginArray();
      for (int b = 0; b < Histogram::kBuckets; ++b) {
        if (snap.histogram.buckets[b] == 0) continue;
        json.BeginObject();
        json.Key("le").Uint(Histogram::BucketBound(b));
        json.Key("count").Uint(snap.histogram.buckets[b]);
        json.EndObject();
      }
      json.EndArray();
    } else {
      json.Key("value").Int(snap.value);
    }
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.Take();
}

void MetricRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& entry : entries_) {
    entry->counter.Reset();
    entry->gauge.Reset();
    entry->histogram.Reset();
  }
}

}  // namespace obs
}  // namespace cqcount
