// Span tracing (the "T" of the telemetry layer).
//
// A Span is an RAII timer: construction stamps a steady-clock start,
// destruction stamps the duration and appends one complete event to the
// calling thread's bounded buffer in the global TraceSink. The sink
// exports Chrome trace_event JSON ("ph":"X" complete events), openable in
// chrome://tracing or Perfetto, so a traced count renders as a flame
// graph: compile passes, per-component plan/execute, DLM runs/rounds,
// exact-phase waves and per-lane task execution.
//
// Parenting: spans nest implicitly through a thread-local current-span
// stack, and EXPLICITLY across threads through SpanRef — code that fans
// work onto executor lanes captures `span.ref()` before the fan-out and
// passes it to the Span constructed inside the lane task, so the exported
// tree stays connected even though the child event lands in another
// thread's buffer (parent/span ids ride in the event "args").
//
// Cost contract: tracing is DISABLED by default. A Span on the disabled
// path is one relaxed atomic load and a branch — no clock read, no
// allocation, no id — which keeps the instrumented hot paths within the
// <2% overhead budget. Telemetry never touches RNG state or merge order:
// estimates are bit-identical with tracing on, off, or toggled, at any
// thread count (property-tested in telemetry_determinism_test).
#ifndef CQCOUNT_OBS_TRACE_H_
#define CQCOUNT_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cqcount {
namespace obs {

/// A handle to a (possibly finished) span, for explicit cross-thread
/// parenting. id 0 = "no parent" (also what disabled spans hand out).
struct SpanRef {
  uint64_t id = 0;
};

/// One finished span. `name` must point at storage outliving the sink
/// (string literals in practice).
struct TraceEvent {
  const char* name = "";
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  uint32_t tid = 0;
  uint64_t id = 0;
  uint64_t parent = 0;
  /// Optional single attribute (both sides static strings — e.g. the
  /// engine's "governance" = "deadline_exceeded"); null key = absent.
  const char* attr_key = nullptr;
  const char* attr_value = nullptr;
};

/// Process-wide collector of trace events, one bounded buffer per thread.
class TraceSink {
 public:
  static TraceSink& Global();

  /// Starts a fresh tracing session: clears all buffers, then enables
  /// span recording.
  void Enable();
  /// Stops recording (already-buffered events are kept for export).
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Appends one event to the calling thread's buffer; drops (and counts)
  /// when the buffer is at capacity.
  void Record(const TraceEvent& event);

  /// Events dropped because a thread buffer was full.
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Total buffered events across threads (snapshot; safe during writes).
  size_t event_count() const;

  /// Per-thread buffer capacity (events). Applies to buffers created after
  /// the call; pre-existing buffers keep their capacity. Default 1 << 16.
  void set_thread_capacity(size_t capacity) {
    thread_capacity_.store(capacity, std::memory_order_relaxed);
  }

  /// Writes the buffered events as Chrome trace_event JSON
  /// ({"traceEvents": [...]}, "ph":"X", timestamps in microseconds).
  /// Safe to call while spans are still being recorded (a consistent
  /// prefix of each thread's buffer is exported).
  void WriteChromeTrace(std::ostream& out) const;
  std::string ExportChromeTraceJson() const;

  /// Drops all buffered events (does not change enabled state).
  void Clear();

 private:
  friend class Span;
  struct ThreadBuffer {
    std::mutex mu;
    std::vector<TraceEvent> events;
    size_t capacity = 0;
    uint32_t tid = 0;
  };

  TraceSink() = default;
  ThreadBuffer& LocalBuffer();
  uint64_t NextSpanId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_id_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<size_t> thread_capacity_{1 << 16};
  std::atomic<uint32_t> next_tid_{0};
  mutable std::mutex registry_mu_;
  /// shared_ptr keeps buffers exportable after their thread exits.
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
};

/// RAII span. Implicitly parented under the calling thread's innermost
/// live span; pass a SpanRef to parent across threads instead.
class Span {
 public:
  explicit Span(const char* name);
  Span(const char* name, SpanRef parent);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Handle for parenting child spans (possibly on other threads).
  /// {0} when tracing was disabled at construction.
  SpanRef ref() const { return SpanRef{id_}; }

  /// Tags the span's exported event with one key/value attribute. Both
  /// strings must outlive the sink (string literals in practice); the last
  /// call wins. No-op when tracing was disabled at construction.
  void SetAttribute(const char* key, const char* value) {
    if (id_ == 0) return;
    attr_key_ = key;
    attr_value_ = value;
  }

 private:
  void Start(const char* name, uint64_t parent, bool use_thread_stack);

  const char* name_ = "";
  uint64_t start_ns_ = 0;
  uint64_t id_ = 0;  // 0 = disabled (destructor is a no-op).
  uint64_t parent_ = 0;
  /// The thread's current span at construction, restored on destruction
  /// (distinct from parent_ when the parent was explicit/cross-thread).
  uint64_t prev_current_ = 0;
  bool on_thread_stack_ = false;
  const char* attr_key_ = nullptr;
  const char* attr_value_ = nullptr;
};

}  // namespace obs
}  // namespace cqcount

#endif  // CQCOUNT_OBS_TRACE_H_
