// Process-wide metric registry (the "M" of the telemetry layer).
//
// Counting code reports what it did through named, label-free metrics:
//
//   Counter   — monotonic event count. Sharded per thread: Add() is one
//               relaxed atomic add to the calling thread's cache-line-
//               padded cell, cells are summed on snapshot. Hot paths
//               accumulate locally and Add() once per deterministic unit
//               (per run, per wave, per call) — telemetry never touches
//               RNG state or merge order, so estimates are bit-identical
//               with metrics on at any thread count.
//   Gauge     — instantaneous level (queue depth, cache entries). One
//               atomic int64; Add/Set from any thread.
//   Histogram — log2-bucketed distribution of latencies/sizes. Sharded
//               like Counter: Observe() is two relaxed adds.
//
// Handles are registered once (first Get* call wins; later calls with the
// same name return the same handle) and live for the process lifetime, so
// call sites cache them in static locals:
//
//   static Counter& calls = MetricRegistry::Global().GetCounter(
//       "dlm.oracle_calls", "EdgeFree oracle calls (deterministic)");
//   calls.Add(n);
//
// Naming convention: "<subsystem>.<noun>[_<unit>]", subsystems matching
// the source tree (engine, plan_cache, executor, dlm, cc, dp, acjr,
// sampler). Durations are histograms in microseconds ("_us"), sizes are
// histograms of raw magnitudes.
#ifndef CQCOUNT_OBS_METRICS_H_
#define CQCOUNT_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cqcount {
namespace obs {

namespace internal {

/// One cache line worth of atomic counter, so concurrent writers on
/// different shards never false-share.
struct alignas(64) ShardCell {
  std::atomic<uint64_t> value{0};
};

/// Number of write shards per counter/histogram. Threads hash onto shards
/// by a process-unique thread index, so up to kShards writers proceed
/// without contention (more threads share cells, still correctly).
constexpr size_t kShards = 16;

/// The calling thread's shard index (stable for the thread's lifetime).
size_t ThisThreadShard();

}  // namespace internal

/// Monotonic, lock-free, thread-sharded event counter.
class Counter {
 public:
  /// Adds `n` to the calling thread's cell (relaxed; never blocks).
  void Add(uint64_t n) {
    cells_[internal::ThisThreadShard()].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  /// Sum over all cells. Safe during concurrent writes (each cell read is
  /// atomic; the sum is a consistent lower bound of "events so far").
  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Zeroes every cell (tests / fresh measurement windows only).
  void Reset() {
    for (auto& cell : cells_) cell.value.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<internal::ShardCell, internal::kShards> cells_;
};

/// Instantaneous signed level (queue depth, live entries).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log2-bucketed histogram: bucket b counts observations v with
/// 2^(b-1) <= v < 2^b (bucket 0 counts v == 0). 64 buckets cover the
/// whole uint64 range, so there is no overflow bucket to mis-size.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  static int BucketFor(uint64_t value) {
    if (value == 0) return 0;
    return 64 - __builtin_clzll(value);
  }
  /// Inclusive upper bound of bucket `b` (the "le" of the JSON export).
  static uint64_t BucketBound(int b) {
    if (b == 0) return 0;
    if (b >= 64) return ~0ULL;
    return (1ULL << b) - 1;
  }

  /// Records one observation: two relaxed adds on this thread's shard.
  void Observe(uint64_t value) {
    const size_t shard = internal::ThisThreadShard();
    cells_[shard].buckets[BucketFor(value)].fetch_add(
        1, std::memory_order_relaxed);
    cells_[shard].sum.fetch_add(value, std::memory_order_relaxed);
  }

  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    std::array<uint64_t, kBuckets> buckets{};
  };
  Snapshot Snap() const;
  void Reset();

 private:
  struct alignas(64) HistCell {
    std::array<std::atomic<uint64_t>, kBuckets> buckets{};
    std::atomic<uint64_t> sum{0};
  };
  std::array<HistCell, internal::kShards> cells_;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One metric's merged state at snapshot time.
struct MetricSnapshot {
  std::string name;
  std::string description;
  MetricKind kind = MetricKind::kCounter;
  /// Counter value / gauge level (unused for histograms).
  int64_t value = 0;
  /// Histogram data (kind == kHistogram only).
  Histogram::Snapshot histogram;
};

/// The process-wide registry. Registration (Get*) takes a mutex; returned
/// handles are lock-free and valid for the process lifetime.
class MetricRegistry {
 public:
  static MetricRegistry& Global();

  /// Returns the counter registered under `name`, creating it with
  /// `description` on first use. The kind of an existing name must match.
  Counter& GetCounter(const std::string& name, const std::string& description);
  Gauge& GetGauge(const std::string& name, const std::string& description);
  Histogram& GetHistogram(const std::string& name,
                          const std::string& description);

  /// Merged snapshot of every registered metric, sorted by name. Safe
  /// during concurrent writes.
  std::vector<MetricSnapshot> Snapshot() const;

  /// The snapshot as one JSON object: {"metrics": [...]} with histogram
  /// buckets as {"le": bound, "count": n} (empty buckets omitted).
  std::string ToJson() const;

  /// Zeroes every registered metric (tests / fresh measurement windows).
  void Reset();

 private:
  MetricRegistry() = default;
  struct Entry;
  Entry& GetOrCreate(const std::string& name, const std::string& description,
                     MetricKind kind);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace obs
}  // namespace cqcount

#endif  // CQCOUNT_OBS_METRICS_H_
