#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <ostream>

#include "obs/json.h"

namespace cqcount {
namespace obs {
namespace {

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The calling thread's innermost live span id (implicit parenting).
thread_local uint64_t t_current_span = 0;

}  // namespace

TraceSink& TraceSink::Global() {
  static TraceSink* sink = new TraceSink();
  return *sink;
}

TraceSink::ThreadBuffer& TraceSink::LocalBuffer() {
  // One buffer per (thread, sink lifetime); the shared_ptr registered in
  // buffers_ keeps events exportable after the thread exits.
  thread_local std::shared_ptr<ThreadBuffer> buffer = [this] {
    auto b = std::make_shared<ThreadBuffer>();
    b->capacity = thread_capacity_.load(std::memory_order_relaxed);
    b->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
    b->events.reserve(std::min<size_t>(b->capacity, 1024));
    std::lock_guard<std::mutex> lock(registry_mu_);
    buffers_.push_back(b);
    return b;
  }();
  return *buffer;
}

void TraceSink::Enable() {
  Clear();
  dropped_.store(0, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceSink::Disable() { enabled_.store(false, std::memory_order_relaxed); }

void TraceSink::Record(const TraceEvent& event) {
  ThreadBuffer& buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  if (buffer.events.size() >= buffer.capacity) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceEvent stamped = event;
  stamped.tid = buffer.tid;
  buffer.events.push_back(stamped);
}

size_t TraceSink::event_count() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    buffers = buffers_;
  }
  size_t total = 0;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    total += buffer->events.size();
  }
  return total;
}

void TraceSink::Clear() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    buffers = buffers_;
  }
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    buffer->events.clear();
  }
}

void TraceSink::WriteChromeTrace(std::ostream& out) const {
  out << ExportChromeTraceJson();
}

std::string TraceSink::ExportChromeTraceJson() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    buffers = buffers_;
  }
  JsonWriter json;
  json.BeginObject();
  json.Key("traceEvents");
  json.BeginArray();
  for (const auto& buffer : buffers) {
    std::vector<TraceEvent> events;
    {
      std::lock_guard<std::mutex> lock(buffer->mu);
      events = buffer->events;
    }
    for (const TraceEvent& event : events) {
      json.BeginObject();
      json.Key("name").String(event.name);
      json.Key("cat").String("cqcount");
      json.Key("ph").String("X");
      // Chrome wants microseconds; fractional us keep ns precision.
      json.Key("ts").Double(static_cast<double>(event.start_ns) / 1e3);
      json.Key("dur").Double(static_cast<double>(event.duration_ns) / 1e3);
      json.Key("pid").Int(1);
      json.Key("tid").Int(event.tid);
      json.Key("args");
      json.BeginObject();
      json.Key("id").Uint(event.id);
      json.Key("parent").Uint(event.parent);
      if (event.attr_key != nullptr) {
        json.Key(event.attr_key).String(event.attr_value);
      }
      json.EndObject();
      json.EndObject();
    }
  }
  json.EndArray();
  json.Key("displayTimeUnit").String("ms");
  json.Key("droppedEvents").Uint(dropped());
  json.EndObject();
  return json.Take();
}

void Span::Start(const char* name, uint64_t parent, bool use_thread_stack) {
  TraceSink& sink = TraceSink::Global();
  // The disabled path: one relaxed load + branch, nothing else.
  if (!sink.enabled()) return;
  name_ = name;
  id_ = sink.NextSpanId();
  prev_current_ = t_current_span;
  parent_ = use_thread_stack ? t_current_span : parent;
  // The span becomes the thread's current span either way, so further
  // implicit children nest under it.
  on_thread_stack_ = true;
  t_current_span = id_;
  start_ns_ = NowNanos();
}

Span::Span(const char* name) { Start(name, 0, /*use_thread_stack=*/true); }

Span::Span(const char* name, SpanRef parent) {
  Start(name, parent.id, /*use_thread_stack=*/false);
}

Span::~Span() {
  if (id_ == 0) return;  // Tracing was disabled at construction.
  TraceEvent event;
  event.name = name_;
  event.start_ns = start_ns_;
  event.duration_ns = NowNanos() - start_ns_;
  event.id = id_;
  event.parent = parent_;
  event.attr_key = attr_key_;
  event.attr_value = attr_value_;
  if (on_thread_stack_) t_current_span = prev_current_;
  TraceSink::Global().Record(event);
}

}  // namespace obs
}  // namespace cqcount
