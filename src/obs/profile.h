// Per-query execution profiles (the "P" of the telemetry layer).
//
// A QueryProfile aggregates one Count()/CountBatch-item execution: phase
// durations (parse, compile, plan, execute), plan-cache outcomes, oracle
// work and lane utilization, with a per-component breakdown. It rides on
// EngineResult, serialises to JSON for `count --json`, and feeds the
// per-shape ShapeProfile the plan cache accumulates — the observed
// cost/variance substrate the adaptive accuracy scheduler consumes.
#ifndef CQCOUNT_OBS_PROFILE_H_
#define CQCOUNT_OBS_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cqcount {
namespace obs {

/// One component's slice of a query execution.
struct ComponentProfile {
  std::string shape_key;
  std::string strategy;
  double exec_millis = 0.0;
  bool plan_cache_hit = false;
  bool executed = true;
  uint64_t oracle_calls = 0;
  uint64_t dp_prepared_decides = 0;
  uint64_t colouring_trials_per_call = 0;
  /// Lane utilization: lanes granted, tasks spawned, tasks run by pool
  /// workers (the rest ran on the calling thread).
  int lanes = 1;
  uint64_t tasks = 0;
  uint64_t worker_tasks = 0;
};

/// The whole execution, one per Count()/batch item.
struct QueryProfile {
  /// Phase durations (wall-clock milliseconds).
  double parse_millis = 0.0;
  double compile_millis = 0.0;
  double plan_millis = 0.0;
  double execute_millis = 0.0;
  /// Plan-cache outcomes across components.
  int plan_cache_hits = 0;
  int plan_cache_misses = 0;
  int guards_evaluated = 0;
  /// Oracle work and trial counts, summed over components.
  uint64_t oracle_calls = 0;
  uint64_t dp_prepared_decides = 0;
  /// Lane utilization, aggregated over components.
  int lanes = 1;
  uint64_t tasks = 0;
  uint64_t worker_tasks = 0;
  std::vector<ComponentProfile> components;

  /// One JSON object (the "profile" value of `count --json`).
  std::string ToJson() const;
};

/// Observed execution history of one canonical shape, accumulated in the
/// plan cache across runs: the cost/variance signal the adaptive
/// scheduler reads (mean cost = total/runs, variance from sq_total).
struct ShapeProfile {
  uint64_t runs = 0;
  double total_exec_millis = 0.0;
  double sq_exec_millis = 0.0;  // Sum of squared per-run millis.
  double last_exec_millis = 0.0;
  double min_exec_millis = 0.0;
  double max_exec_millis = 0.0;
  uint64_t total_oracle_calls = 0;
  /// Deterministic estimator probes (DLM edge-free calls / membership
  /// tests) — excludes strategy-specific hom-query work. The scheduler's
  /// budget split reads ONLY this counter; trials budgeting additionally
  /// reads the oracle-call tally (itself lane-invariant and fixed-seed
  /// reproducible), so adaptive results stay reproducible at every lane
  /// count; wall-clock fields drive scheduling-only decisions (lane
  /// grants).
  uint64_t total_estimator_calls = 0;
  uint64_t converged_runs = 0;
  double last_estimate = 0.0;

  void Observe(double exec_millis, uint64_t oracle_calls,
               uint64_t estimator_calls, double estimate, bool converged);
  double MeanExecMillis() const {
    return runs == 0 ? 0.0 : total_exec_millis / static_cast<double>(runs);
  }
  /// Mean deterministic estimator probes per execution (the scheduler's
  /// cost-per-execution signal; 0 before any observation).
  double MeanEstimatorCalls() const {
    return runs == 0 ? 0.0 : static_cast<double>(total_estimator_calls) /
                                 static_cast<double>(runs);
  }
  /// Mean oracle calls per execution — includes strategy-specific work
  /// the estimator-call counter excludes (colour-coding hom queries).
  /// Lane-invariant and fixed-seed reproducible (the benches pin this),
  /// so trials budgeting may read it without breaking the determinism
  /// contract.
  double MeanOracleCalls() const {
    return runs == 0 ? 0.0 : static_cast<double>(total_oracle_calls) /
                                 static_cast<double>(runs);
  }
  /// Population variance of the per-run execution time.
  double VarianceExecMillis() const;
  std::string ToJson() const;
};

}  // namespace obs
}  // namespace cqcount

#endif  // CQCOUNT_OBS_PROFILE_H_
