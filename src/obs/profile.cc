#include "obs/profile.h"

#include <algorithm>

#include "obs/json.h"

namespace cqcount {
namespace obs {

std::string QueryProfile::ToJson() const {
  JsonWriter json;
  json.BeginObject();
  json.Key("phases");
  json.BeginObject();
  json.Key("parse_ms").Double(parse_millis);
  json.Key("compile_ms").Double(compile_millis);
  json.Key("plan_ms").Double(plan_millis);
  json.Key("execute_ms").Double(execute_millis);
  json.EndObject();
  json.Key("plan_cache_hits").Int(plan_cache_hits);
  json.Key("plan_cache_misses").Int(plan_cache_misses);
  json.Key("guards_evaluated").Int(guards_evaluated);
  json.Key("oracle_calls").Uint(oracle_calls);
  json.Key("dp_prepared_decides").Uint(dp_prepared_decides);
  json.Key("lanes").Int(lanes);
  json.Key("tasks").Uint(tasks);
  json.Key("worker_tasks").Uint(worker_tasks);
  json.Key("components");
  json.BeginArray();
  for (const ComponentProfile& c : components) {
    json.BeginObject();
    json.Key("shape_key").String(c.shape_key);
    json.Key("strategy").String(c.strategy);
    json.Key("exec_ms").Double(c.exec_millis);
    json.Key("plan_cache_hit").Bool(c.plan_cache_hit);
    json.Key("executed").Bool(c.executed);
    json.Key("oracle_calls").Uint(c.oracle_calls);
    json.Key("dp_prepared_decides").Uint(c.dp_prepared_decides);
    json.Key("colouring_trials_per_call").Uint(c.colouring_trials_per_call);
    json.Key("lanes").Int(c.lanes);
    json.Key("tasks").Uint(c.tasks);
    json.Key("worker_tasks").Uint(c.worker_tasks);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.Take();
}

void ShapeProfile::Observe(double exec_millis, uint64_t oracle_calls,
                           uint64_t estimator_calls, double estimate,
                           bool converged) {
  if (runs == 0) {
    min_exec_millis = exec_millis;
    max_exec_millis = exec_millis;
  } else {
    min_exec_millis = std::min(min_exec_millis, exec_millis);
    max_exec_millis = std::max(max_exec_millis, exec_millis);
  }
  ++runs;
  total_exec_millis += exec_millis;
  sq_exec_millis += exec_millis * exec_millis;
  last_exec_millis = exec_millis;
  total_oracle_calls += oracle_calls;
  total_estimator_calls += estimator_calls;
  if (converged) ++converged_runs;
  last_estimate = estimate;
}

double ShapeProfile::VarianceExecMillis() const {
  if (runs == 0) return 0.0;
  const double mean = MeanExecMillis();
  const double var =
      sq_exec_millis / static_cast<double>(runs) - mean * mean;
  return var > 0.0 ? var : 0.0;
}

std::string ShapeProfile::ToJson() const {
  JsonWriter json;
  json.BeginObject();
  json.Key("runs").Uint(runs);
  json.Key("mean_exec_ms").Double(MeanExecMillis());
  json.Key("var_exec_ms").Double(VarianceExecMillis());
  json.Key("last_exec_ms").Double(last_exec_millis);
  json.Key("min_exec_ms").Double(min_exec_millis);
  json.Key("max_exec_ms").Double(max_exec_millis);
  json.Key("total_oracle_calls").Uint(total_oracle_calls);
  json.Key("total_estimator_calls").Uint(total_estimator_calls);
  json.Key("converged_runs").Uint(converged_runs);
  json.Key("last_estimate").Double(last_estimate);
  json.EndObject();
  return json.Take();
}

}  // namespace obs
}  // namespace cqcount
