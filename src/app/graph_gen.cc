#include "app/graph_gen.h"

#include <algorithm>
#include <cassert>

namespace cqcount {

void SimpleGraph::AddEdge(int u, int v) {
  if (u == v) return;
  if (u > v) std::swap(u, v);
  assert(u >= 0 && v < num_vertices);
  const std::pair<int, int> e{u, v};
  if (std::find(edges.begin(), edges.end(), e) == edges.end()) {
    edges.push_back(e);
  }
}

std::vector<std::vector<int>> SimpleGraph::AdjacencyLists() const {
  std::vector<std::vector<int>> adj(num_vertices);
  for (const auto& [u, v] : edges) {
    adj[u].push_back(v);
    adj[v].push_back(u);
  }
  for (auto& list : adj) std::sort(list.begin(), list.end());
  return adj;
}

SimpleGraph PathGraph(int n) {
  SimpleGraph g;
  g.num_vertices = n;
  for (int i = 0; i + 1 < n; ++i) g.AddEdge(i, i + 1);
  return g;
}

SimpleGraph CycleGraph(int n) {
  assert(n >= 3);
  SimpleGraph g = PathGraph(n);
  g.AddEdge(n - 1, 0);
  return g;
}

SimpleGraph CliqueGraph(int n) {
  SimpleGraph g;
  g.num_vertices = n;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) g.AddEdge(i, j);
  }
  return g;
}

SimpleGraph StarGraph(int leaves) {
  SimpleGraph g;
  g.num_vertices = leaves + 1;
  for (int i = 1; i <= leaves; ++i) g.AddEdge(0, i);
  return g;
}

SimpleGraph GridGraph(int rows, int cols) {
  SimpleGraph g;
  g.num_vertices = rows * cols;
  auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.AddEdge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.AddEdge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

SimpleGraph BinaryTreeGraph(int n) {
  SimpleGraph g;
  g.num_vertices = n;
  for (int i = 1; i < n; ++i) g.AddEdge(i, (i - 1) / 2);
  return g;
}

SimpleGraph ErdosRenyi(int n, double p, Rng& rng) {
  SimpleGraph g;
  g.num_vertices = n;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (rng.Bernoulli(p)) g.edges.push_back({i, j});
    }
  }
  return g;
}

SimpleGraph RandomGraphWithEdges(int n, int m, Rng& rng) {
  SimpleGraph g;
  g.num_vertices = n;
  const long max_edges = static_cast<long>(n) * (n - 1) / 2;
  assert(m <= max_edges);
  (void)max_edges;
  while (g.num_edges() < m) {
    const int u = static_cast<int>(rng.UniformInt(n));
    const int v = static_cast<int>(rng.UniformInt(n));
    g.AddEdge(u, v);
  }
  return g;
}

Database GraphToDatabase(const SimpleGraph& g, const std::string& relation) {
  Database db(static_cast<uint32_t>(g.num_vertices));
  Status s = db.DeclareRelation(relation, 2);
  assert(s.ok());
  for (const auto& [u, v] : g.edges) {
    s = db.AddFact(relation, {static_cast<Value>(u), static_cast<Value>(v)});
    assert(s.ok());
    s = db.AddFact(relation, {static_cast<Value>(v), static_cast<Value>(u)});
    assert(s.ok());
  }
  (void)s;
  db.Canonicalize();
  return db;
}

Hypergraph GraphToHypergraph(const SimpleGraph& g) {
  Hypergraph h(g.num_vertices);
  for (const auto& [u, v] : g.edges) h.AddEdge({u, v});
  return h;
}

}  // namespace cqcount
