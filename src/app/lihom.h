// Locally injective homomorphisms (the paper's flagship application,
// Corollary 6).
//
// A homomorphism h : G -> G' is locally injective when it is injective on
// every neighbourhood N_G(v). The paper encodes these as answers of the
// ECQ phi(G) = AND_{edges} E(x_i, x_j) AND AND_{cn(G)} x_i != x_j over the
// database D(G'), where cn(G) is the set of pairs with a common
// neighbour — so Theorem 5 gives an FPTRAS whenever tw(G) is bounded
// (Corollary 6); note the disequalities do NOT enter H(phi).
#ifndef CQCOUNT_APP_LIHOM_H_
#define CQCOUNT_APP_LIHOM_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "app/graph_gen.h"
#include "counting/fptras.h"
#include "query/query.h"
#include "util/status.h"

namespace cqcount {
namespace lihom {

/// Pairs of distinct pattern vertices that share a common neighbour.
std::vector<std::pair<int, int>> CommonNeighbourPairs(const SimpleGraph& g);

/// The DCQ phi(G) from Corollary 6's construction; every variable is
/// free. Requires a pattern without isolated vertices.
StatusOr<Query> BuildLihomQuery(const SimpleGraph& pattern);

/// Exact count by brute force (exponential in |V(pattern)|).
StatusOr<uint64_t> ExactCountLocallyInjectiveHoms(const SimpleGraph& pattern,
                                                  const SimpleGraph& host);

/// FPTRAS count (Theorem 5 / Corollary 6).
StatusOr<ApproxCountResult> ApproxCountLocallyInjectiveHoms(
    const SimpleGraph& pattern, const SimpleGraph& host,
    const ApproxOptions& opts);

}  // namespace lihom
}  // namespace cqcount

#endif  // CQCOUNT_APP_LIHOM_H_
