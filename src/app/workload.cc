#include "app/workload.h"

#include <cassert>
#include <cmath>

namespace cqcount {

void AddRandomTuples(Database* db, const std::string& name, int arity,
                     uint64_t count, Rng& rng) {
  Status s = db->DeclareRelation(name, arity);
  assert(s.ok());
  const uint32_t n = db->universe_size();
  assert(n > 0);
  Relation* rel = db->mutable_relation(name);
  // Distinct tuples via retry; callers keep count well below n^arity.
  uint64_t added = 0;
  uint64_t attempts = 0;
  while (added < count && attempts < 20 * count + 1000) {
    ++attempts;
    Tuple t(arity);
    for (int i = 0; i < arity; ++i) {
      t[i] = static_cast<Value>(rng.UniformInt(n));
    }
    const size_t before = rel->tuples().size();
    rel->Add(std::move(t));
    if (rel->tuples().size() > before) ++added;
  }
  (void)s;
}

Database RandomDatabase(uint32_t universe,
                        const std::vector<RelationSpec>& specs, Rng& rng) {
  Database db(universe);
  for (const RelationSpec& spec : specs) {
    AddRandomTuples(&db, spec.name, spec.arity, spec.tuples, rng);
  }
  return db;
}

Database SocialNetworkDb(uint32_t num_people, double avg_friends,
                         double adult_fraction, Rng& rng) {
  Database db(num_people);
  Status s = db.DeclareRelation("F", 2);
  assert(s.ok());
  s = db.DeclareRelation("Adult", 1);
  assert(s.ok());
  const double p =
      num_people > 1 ? avg_friends / static_cast<double>(num_people - 1) : 0;
  for (uint32_t u = 0; u < num_people; ++u) {
    for (uint32_t v = u + 1; v < num_people; ++v) {
      if (rng.Bernoulli(p)) {
        s = db.AddFact("F", {u, v});
        assert(s.ok());
        s = db.AddFact("F", {v, u});
        assert(s.ok());
      }
    }
    if (rng.Bernoulli(adult_fraction)) {
      s = db.AddFact("Adult", {u});
      assert(s.ok());
    }
  }
  (void)s;
  return db;
}

}  // namespace cqcount
