#include "app/workload.h"

#include <cassert>
#include <cmath>
#include <unordered_set>

#include "util/hash.h"

namespace cqcount {

void AddRandomTuples(Database* db, const std::string& name, int arity,
                     uint64_t count, Rng& rng) {
  Status s = db->DeclareRelation(name, arity);
  assert(s.ok());
  const uint32_t n = db->universe_size();
  assert(n > 0);
  Relation* rel = db->mutable_relation(name);
  // Distinct tuples via retry; callers keep count well below n^arity.
  // Distinctness is tracked in a side set so the relation itself stays a
  // cheap append-only flat buffer until the final canonicalisation. The
  // packed-code fast path needs n^arity to fit in 64 bits; otherwise
  // fall back to hashing whole tuples.
  uint64_t space = 1;
  bool packable = true;
  for (int i = 0; i < arity && packable; ++i) {
    if (space > UINT64_MAX / n) packable = false;
    space *= n;
  }
  std::unordered_set<uint64_t> seen_codes;
  std::unordered_set<Tuple, VectorHash<Value>> seen_tuples;
  // Repeated calls for the same relation must still add `count` net-new
  // tuples: seed the dedup set with the rows already present.
  for (TupleView existing : *rel) {
    if (packable) {
      uint64_t code = 0;
      for (Value v : existing) code = code * n + v;
      seen_codes.insert(code);
    } else {
      seen_tuples.insert(MaterializeTuple(existing));
    }
  }
  Tuple t(arity);
  uint64_t added = 0;
  uint64_t attempts = 0;
  while (added < count && attempts < 20 * count + 1000) {
    ++attempts;
    uint64_t code = 0;
    for (int i = 0; i < arity; ++i) {
      t[i] = static_cast<Value>(rng.UniformInt(n));
      code = code * n + t[i];
    }
    const bool fresh =
        packable ? seen_codes.insert(code).second : seen_tuples.insert(t).second;
    if (!fresh) continue;
    rel->Add(t);
    ++added;
  }
  rel->Canonicalize();
  (void)s;
}

Database RandomDatabase(uint32_t universe,
                        const std::vector<RelationSpec>& specs, Rng& rng) {
  Database db(universe);
  for (const RelationSpec& spec : specs) {
    AddRandomTuples(&db, spec.name, spec.arity, spec.tuples, rng);
  }
  return db;
}

Database SocialNetworkDb(uint32_t num_people, double avg_friends,
                         double adult_fraction, Rng& rng) {
  Database db(num_people);
  Status s = db.DeclareRelation("F", 2);
  assert(s.ok());
  s = db.DeclareRelation("Adult", 1);
  assert(s.ok());
  const double p =
      num_people > 1 ? avg_friends / static_cast<double>(num_people - 1) : 0;
  for (uint32_t u = 0; u < num_people; ++u) {
    for (uint32_t v = u + 1; v < num_people; ++v) {
      if (rng.Bernoulli(p)) {
        s = db.AddFact("F", {u, v});
        assert(s.ok());
        s = db.AddFact("F", {v, u});
        assert(s.ok());
      }
    }
    if (rng.Bernoulli(adult_fraction)) {
      s = db.AddFact("Adult", {u});
      assert(s.ok());
    }
  }
  (void)s;
  db.Canonicalize();
  return db;
}

}  // namespace cqcount
