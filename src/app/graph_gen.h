// Simple undirected graphs and generators for examples, tests and benches.
#ifndef CQCOUNT_APP_GRAPH_GEN_H_
#define CQCOUNT_APP_GRAPH_GEN_H_

#include <string>
#include <utility>
#include <vector>

#include "hypergraph/hypergraph.h"
#include "relational/structure.h"
#include "util/random.h"

namespace cqcount {

/// An undirected simple graph with dense vertex ids.
struct SimpleGraph {
  int num_vertices = 0;
  /// Normalised edges (u < v), duplicate-free.
  std::vector<std::pair<int, int>> edges;

  /// Adds {u, v}; ignores loops and duplicates.
  void AddEdge(int u, int v);

  /// Sorted adjacency lists.
  std::vector<std::vector<int>> AdjacencyLists() const;

  int num_edges() const { return static_cast<int>(edges.size()); }
};

/// P_n: path on n vertices.
SimpleGraph PathGraph(int n);
/// C_n: cycle on n vertices (n >= 3).
SimpleGraph CycleGraph(int n);
/// K_n: complete graph.
SimpleGraph CliqueGraph(int n);
/// Star with `leaves` leaves (centre = vertex 0).
SimpleGraph StarGraph(int leaves);
/// rows x cols grid.
SimpleGraph GridGraph(int rows, int cols);
/// Complete binary tree with n vertices (heap indexing).
SimpleGraph BinaryTreeGraph(int n);
/// G(n, p) Erdos-Renyi.
SimpleGraph ErdosRenyi(int n, double p, Rng& rng);
/// Uniform graph with exactly m distinct edges (m <= n(n-1)/2).
SimpleGraph RandomGraphWithEdges(int n, int m, Rng& rng);

/// Encodes `g` as a database with a symmetric binary relation `relation`
/// (both directions stored) over universe {0..n-1}.
Database GraphToDatabase(const SimpleGraph& g,
                         const std::string& relation = "E");

/// The graph viewed as a 2-uniform hypergraph.
Hypergraph GraphToHypergraph(const SimpleGraph& g);

}  // namespace cqcount

#endif  // CQCOUNT_APP_GRAPH_GEN_H_
