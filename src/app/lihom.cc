#include "app/lihom.h"

#include <string>

#include "hom/backtracking.h"

namespace cqcount {
namespace lihom {

std::vector<std::pair<int, int>> CommonNeighbourPairs(const SimpleGraph& g) {
  const auto adj = g.AdjacencyLists();
  std::vector<std::pair<int, int>> pairs;
  for (int u = 0; u < g.num_vertices; ++u) {
    for (int v = u + 1; v < g.num_vertices; ++v) {
      bool common = false;
      size_t i = 0;
      size_t j = 0;
      while (i < adj[u].size() && j < adj[v].size()) {
        if (adj[u][i] == adj[v][j]) {
          common = true;
          break;
        }
        if (adj[u][i] < adj[v][j]) {
          ++i;
        } else {
          ++j;
        }
      }
      if (common) pairs.push_back({u, v});
    }
  }
  return pairs;
}

StatusOr<Query> BuildLihomQuery(const SimpleGraph& pattern) {
  Query q;
  for (int v = 0; v < pattern.num_vertices; ++v) {
    q.AddVariable("x" + std::to_string(v));
  }
  q.SetNumFree(pattern.num_vertices);
  if (pattern.edges.empty()) {
    return Status::InvalidArgument(
        "pattern must have at least one edge (no isolated vertices)");
  }
  for (const auto& [u, v] : pattern.edges) {
    Atom atom;
    atom.relation = "E";
    atom.vars = {u, v};
    q.AddAtom(std::move(atom));
  }
  for (const auto& [u, v] : CommonNeighbourPairs(pattern)) {
    q.AddDisequality(u, v);
  }
  Status s = q.Validate();
  if (!s.ok()) return s;
  return q;
}

StatusOr<uint64_t> ExactCountLocallyInjectiveHoms(const SimpleGraph& pattern,
                                                  const SimpleGraph& host) {
  auto q = BuildLihomQuery(pattern);
  if (!q.ok()) return q.status();
  Database db = GraphToDatabase(host);
  return CountAnswersBrute(*q, db);
}

StatusOr<ApproxCountResult> ApproxCountLocallyInjectiveHoms(
    const SimpleGraph& pattern, const SimpleGraph& host,
    const ApproxOptions& opts) {
  auto q = BuildLihomQuery(pattern);
  if (!q.ok()) return q.status();
  Database db = GraphToDatabase(host);
  return ApproxCountAnswers(*q, db, opts);
}

}  // namespace lihom
}  // namespace cqcount
