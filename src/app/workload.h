// Synthetic database workloads for the experiment suite.
#ifndef CQCOUNT_APP_WORKLOAD_H_
#define CQCOUNT_APP_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relational/structure.h"
#include "util/random.h"

namespace cqcount {

/// Adds `count` random distinct tuples to relation `name` (declared on
/// demand with the given arity).
void AddRandomTuples(Database* db, const std::string& name, int arity,
                     uint64_t count, Rng& rng);

/// A database with the given relations, each filled with random tuples.
struct RelationSpec {
  std::string name;
  int arity = 2;
  uint64_t tuples = 0;
};
Database RandomDatabase(uint32_t universe, const std::vector<RelationSpec>& specs,
                        Rng& rng);

/// The intro's running example: people with a symmetric friendship
/// relation F (Erdos-Renyi with expected degree `avg_friends`) plus a
/// unary relation Adult marking roughly `adult_fraction` of the people.
Database SocialNetworkDb(uint32_t num_people, double avg_friends,
                         double adult_fraction, Rng& rng);

}  // namespace cqcount

#endif  // CQCOUNT_APP_WORKLOAD_H_
