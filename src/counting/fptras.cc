#include "counting/fptras.h"

#include <cmath>
#include <memory>

#include "counting/colour_coding.h"
#include "counting/partite_hypergraph.h"
#include "hom/hom_oracle.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/random.h"

namespace cqcount {
namespace {

// One bulk add per FPTRAS invocation (the pipeline around the DLM
// estimator); nothing here runs inside a sampling loop.
struct FptrasMetrics {
  obs::Counter& invocations = obs::MetricRegistry::Global().GetCounter(
      "fptras.invocations", "ApproxCountAnswers pipeline executions");
  // NOTE on determinism: hom_queries is a WORK counter, not a result.
  // The colour-coding trial loop exits early across parallel lanes, so
  // the number of hom-oracle queries actually issued depends on
  // scheduling. Verdicts (and thus estimates and oracle_calls =
  // hom + edgefree probes at the DLM layer) are scheduling-independent;
  // only this tally of work performed may vary run to run. The `.nondet.`
  // name segment marks it (and any future scheduling-dependent counter)
  // for tooling: scripts/check_estimates.py excludes the prefix from
  // determinism-sensitive assertions.
  obs::Counter& hom_queries = obs::MetricRegistry::Global().GetCounter(
      "cc.nondet.hom_queries",
      "Hom-oracle queries issued by colour-coding trials. Nondeterministic "
      "work counter: parallel trial loops exit early, so the tally varies "
      "with scheduling; trial verdicts never do");
  obs::Counter& colouring_trials = obs::MetricRegistry::Global().GetCounter(
      "cc.colouring_trials_per_call",
      "Colouring trials budgeted per edge-free oracle call, summed over "
      "invocations");
  obs::Counter& prepared_decides = obs::MetricRegistry::Global().GetCounter(
      "dp.prepared_decides",
      "Trial decisions answered by the prepared (trial-reuse) DP split");
  obs::Counter& cached_bag_rows = obs::MetricRegistry::Global().GetCounter(
      "dp.cached_bag_rows",
      "Bag-join cache rows shared across an invocation's oracle calls");
  obs::Counter& monolithic = obs::MetricRegistry::Global().GetCounter(
      "dp.monolithic_fallbacks",
      "Invocations where the bag-join cache cap forced the per-call DP");

  static FptrasMetrics& Get() {
    static FptrasMetrics* metrics = new FptrasMetrics();
    return *metrics;
  }
};

// Eager registration at load: every metric name appears in `stats` JSON
// (schema validation) even on code paths that never touch it.
[[maybe_unused]] const FptrasMetrics& kFptrasMetricsInit = FptrasMetrics::Get();

void RecordPipelineMetrics(const ApproxCountResult& result) {
  FptrasMetrics& metrics = FptrasMetrics::Get();
  metrics.invocations.Increment();
  metrics.hom_queries.Add(result.hom_queries);
  metrics.colouring_trials.Add(result.colouring_trials_per_call);
  metrics.prepared_decides.Add(result.dp_prepared_decides);
  metrics.cached_bag_rows.Add(result.dp_cached_bag_rows);
  if (!result.dp_prepared_path) metrics.monolithic.Increment();
}

}  // namespace

StatusOr<ApproxCountResult> ApproxCountAnswers(const Query& q,
                                               const Database& db,
                                               const ApproxOptions& opts) {
  Status valid = q.Validate();
  if (!valid.ok()) return valid;
  valid = q.CheckAgainstDatabase(db);
  if (!valid.ok()) return valid;
  if (opts.epsilon <= 0.0 || opts.epsilon >= 1.0 || opts.delta <= 0.0 ||
      opts.delta >= 1.0) {
    return Status::InvalidArgument("epsilon and delta must lie in (0, 1)");
  }
  if (db.universe_size() == 0) {
    ApproxCountResult r;
    r.exact = true;
    return r;
  }

  // Decomposition of H(phi) (= H(A-hat) up to harmless singleton edges,
  // proof of Theorem 5).
  Hypergraph h = q.BuildHypergraph();
  FWidthResult width;
  if (opts.precomputed_decomposition) {
    width = *opts.precomputed_decomposition;
  } else {
    obs::Span span("fptras.decompose");
    width = ComputeDecomposition(h, opts.objective,
                                 opts.exact_decomposition_limit);
  }
  CQLOG(kInfo) << "FPTRAS: decomposition width " << width.width << " over "
               << h.num_vertices() << " variables";

  DecompositionHomOracle hom(q, db, width.decomposition);
  // Fault-injection site: lets tests fail the oracle stack's prepare step
  // without constructing a pathological database.
  Status prepare_fp = failpoint::Check("fptras.oracle_prepare");
  if (!prepare_fp.ok()) return prepare_fp;

  // Split delta between the estimator and the oracle simulation
  // (Lemma 22's union bound): per-call failure delta/(2 * max calls).
  const double delta_estimator = opts.delta / 2.0;
  ColourCodingOptions cc;
  cc.per_call_failure =
      opts.per_call_failure_override > 0.0
          ? opts.per_call_failure_override
          : opts.delta /
                (2.0 * static_cast<double>(opts.dlm.max_oracle_calls));
  cc.seed = opts.seed ^ 0x9E3779B97F4A7C15ULL;
  cc.pool = opts.pool;
  cc.lanes = opts.intra_threads;
  cc.governor = opts.governor;

  ApproxCountResult result;
  result.width = width.width;

  if (q.num_free() == 0) {
    // |Ans| is 0 or 1 (the empty assignment): amplified decision. A single
    // decision is one deterministic unit: it either completes untouched or
    // is not started at all.
    if (opts.governor != nullptr &&
        opts.governor->Check() != GovernanceState::kRunning) {
      return opts.governor->ToStatus("FPTRAS existential decision");
    }
    Rng rng(cc.seed);
    VarDomains unrestricted;
    const bool any = DecideAnySolution(q, &hom, db.universe_size(),
                                       unrestricted, opts.delta, rng);
    result.estimate = any ? 1.0 : 0.0;
    result.lower_bound = result.estimate;
    result.upper_bound = result.estimate;
    result.exact = q.disequalities().empty();
    result.hom_queries = hom.num_calls();
    result.dp_prepared_decides = hom.dp_stats().prepared_decides;
    result.dp_cached_bag_rows = hom.dp_stats().cached_bag_rows;
    result.dp_prepared_path = hom.dp_stats().prepared_path;
    RecordPipelineMetrics(result);
    return result;
  }

  ColourCodingEdgeFreeOracle oracle(q, &hom, db.universe_size(), cc);
  result.colouring_trials_per_call = oracle.trials_per_call();

  DlmOptions dlm = opts.dlm;
  dlm.epsilon = opts.epsilon;
  dlm.delta = delta_estimator;
  dlm.seed = opts.seed;
  dlm.pool = opts.pool;
  dlm.intra_threads = opts.intra_threads;
  dlm.governor = opts.governor;
  std::vector<uint32_t> part_sizes(q.num_free(), db.universe_size());
  auto dlm_result = [&] {
    obs::Span span("fptras.dlm");
    return DlmCountEdges(part_sizes, oracle, dlm);
  }();
  if (!dlm_result.ok()) return dlm_result.status();

  result.estimate = dlm_result->estimate;
  // "Exact" from the enumeration phase is still subject to the one-sided
  // colour-coding failure when disequalities are present; keep the flag,
  // since the failure probability is covered by delta.
  result.exact = dlm_result->exact && q.disequalities().empty();
  result.converged = dlm_result->converged;
  result.partial = dlm_result->partial;
  result.lower_bound = dlm_result->lower_bound;
  result.upper_bound = dlm_result->upper_bound;
  result.stop_reason = dlm_result->stop_reason;
  result.rounds_executed = dlm_result->rounds_executed;
  result.completed_runs = dlm_result->completed_runs;
  result.total_runs = dlm_result->total_runs;
  result.edgefree_calls = dlm_result->oracle_calls;
  result.hom_queries = hom.num_calls();
  result.dp_prepared_decides = hom.dp_stats().prepared_decides;
  result.dp_cached_bag_rows = hom.dp_stats().cached_bag_rows;
  result.dp_prepared_path = hom.dp_stats().prepared_path;
  result.parallel = dlm_result->parallel;
  RecordPipelineMetrics(result);
  return result;
}

}  // namespace cqcount
