#include "counting/fptras.h"

#include <cmath>
#include <memory>

#include "counting/colour_coding.h"
#include "counting/partite_hypergraph.h"
#include "hom/hom_oracle.h"
#include "util/logging.h"
#include "util/random.h"

namespace cqcount {

StatusOr<ApproxCountResult> ApproxCountAnswers(const Query& q,
                                               const Database& db,
                                               const ApproxOptions& opts) {
  Status valid = q.Validate();
  if (!valid.ok()) return valid;
  valid = q.CheckAgainstDatabase(db);
  if (!valid.ok()) return valid;
  if (opts.epsilon <= 0.0 || opts.epsilon >= 1.0 || opts.delta <= 0.0 ||
      opts.delta >= 1.0) {
    return Status::InvalidArgument("epsilon and delta must lie in (0, 1)");
  }
  if (db.universe_size() == 0) {
    ApproxCountResult r;
    r.exact = true;
    return r;
  }

  // Decomposition of H(phi) (= H(A-hat) up to harmless singleton edges,
  // proof of Theorem 5).
  Hypergraph h = q.BuildHypergraph();
  FWidthResult width =
      opts.precomputed_decomposition
          ? *opts.precomputed_decomposition
          : ComputeDecomposition(h, opts.objective,
                                 opts.exact_decomposition_limit);
  CQLOG(kInfo) << "FPTRAS: decomposition width " << width.width << " over "
               << h.num_vertices() << " variables";

  DecompositionHomOracle hom(q, db, width.decomposition);

  // Split delta between the estimator and the oracle simulation
  // (Lemma 22's union bound): per-call failure delta/(2 * max calls).
  const double delta_estimator = opts.delta / 2.0;
  ColourCodingOptions cc;
  cc.per_call_failure =
      opts.per_call_failure_override > 0.0
          ? opts.per_call_failure_override
          : opts.delta /
                (2.0 * static_cast<double>(opts.dlm.max_oracle_calls));
  cc.seed = opts.seed ^ 0x9E3779B97F4A7C15ULL;
  cc.pool = opts.pool;
  cc.lanes = opts.intra_threads;

  ApproxCountResult result;
  result.width = width.width;

  if (q.num_free() == 0) {
    // |Ans| is 0 or 1 (the empty assignment): amplified decision.
    Rng rng(cc.seed);
    VarDomains unrestricted;
    const bool any = DecideAnySolution(q, &hom, db.universe_size(),
                                       unrestricted, opts.delta, rng);
    result.estimate = any ? 1.0 : 0.0;
    result.exact = q.disequalities().empty();
    result.hom_queries = hom.num_calls();
    result.dp_prepared_decides = hom.dp_stats().prepared_decides;
    result.dp_cached_bag_rows = hom.dp_stats().cached_bag_rows;
    result.dp_prepared_path = hom.dp_stats().prepared_path;
    return result;
  }

  ColourCodingEdgeFreeOracle oracle(q, &hom, db.universe_size(), cc);
  result.colouring_trials_per_call = oracle.trials_per_call();

  DlmOptions dlm = opts.dlm;
  dlm.epsilon = opts.epsilon;
  dlm.delta = delta_estimator;
  dlm.seed = opts.seed;
  dlm.pool = opts.pool;
  dlm.intra_threads = opts.intra_threads;
  std::vector<uint32_t> part_sizes(q.num_free(), db.universe_size());
  auto dlm_result = DlmCountEdges(part_sizes, oracle, dlm);
  if (!dlm_result.ok()) return dlm_result.status();

  result.estimate = dlm_result->estimate;
  // "Exact" from the enumeration phase is still subject to the one-sided
  // colour-coding failure when disequalities are present; keep the flag,
  // since the failure probability is covered by delta.
  result.exact = dlm_result->exact && q.disequalities().empty();
  result.converged = dlm_result->converged;
  result.edgefree_calls = dlm_result->oracle_calls;
  result.hom_queries = hom.num_calls();
  result.dp_prepared_decides = hom.dp_stats().prepared_decides;
  result.dp_cached_bag_rows = hom.dp_stats().cached_bag_rows;
  result.dp_prepared_path = hom.dp_stats().prepared_path;
  result.parallel = dlm_result->parallel;
  return result;
}

}  // namespace cqcount
