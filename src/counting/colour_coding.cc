#include "counting/colour_coding.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>

namespace cqcount {
namespace {

// Q = ceil(ln(1/delta')) * 4^{|Delta|}, clamped to at least one trial.
uint64_t NumTrials(size_t num_disequalities, double per_call_failure) {
  const double log_term = std::ceil(std::log(1.0 / per_call_failure));
  double trials = std::max(1.0, log_term);
  for (size_t i = 0; i < num_disequalities; ++i) trials *= 4.0;
  // Clamp to something addressable; ||phi|| is a parameter, so this is the
  // paper's exp(O(||phi||^2)) factor showing up in practice.
  return static_cast<uint64_t>(std::min(trials, 1e15));
}

// Sorted, duplicate-free list of disequality endpoint variables — the
// only variables whose domains change across colouring trials.
std::vector<int> EndpointVars(const Query& q) {
  std::vector<int> vars;
  for (const Disequality& d : q.disequalities()) {
    vars.push_back(d.lhs);
    vars.push_back(d.rhs);
  }
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  return vars;
}

// Minimum trial count before one call's trial loop is worth fanning out.
constexpr uint64_t kMinTrialsForFanout = 8;

}  // namespace

namespace internal {

// Per-trial overlay builder: one packed mask per endpoint variable,
// intersected across the disequalities that constrain it. Buffers are
// reused across trials and oracle calls (no per-trial allocation after
// warm-up). One instance per lane: Draw() output is valid until the
// lane's next Draw().
class TrialOverlay {
 public:
  explicit TrialOverlay(const Query& q)
      : disequalities_(q.disequalities()), endpoint_vars_(EndpointVars(q)) {
    masks_.resize(endpoint_vars_.size());
    slot_of_.assign(static_cast<size_t>(q.num_vars()), -1);
    for (size_t k = 0; k < endpoint_vars_.size(); ++k) {
      slot_of_[static_cast<size_t>(endpoint_vars_[k])] =
          static_cast<int>(k);
    }
  }

  const std::vector<int>& endpoint_vars() const { return endpoint_vars_; }

  /// Draws one colouring per disequality from `rng` (the per-trial
  /// derived stream) and returns the merged per-endpoint restrictions.
  /// The views are valid until the next Draw().
  const std::vector<DomainRestriction>& Draw(Rng& rng, uint32_t universe) {
    touched_.assign(masks_.size(), 0);
    for (const Disequality& d : disequalities_) {
      // f_eta : U(D) -> {r, b} uniformly at random; the smaller endpoint
      // must land red, the larger blue (Definition 26's R_eta / B_eta).
      rng.RandomMaskInto(colouring_, universe, 0.5);
      Apply(d.lhs, /*want_red=*/true);
      Apply(d.rhs, /*want_red=*/false);
    }
    restrictions_.clear();
    for (size_t k = 0; k < masks_.size(); ++k) {
      restrictions_.push_back({endpoint_vars_[k], &masks_[k]});
    }
    return restrictions_;
  }

 private:
  void Apply(int var, bool want_red) {
    const int slot = slot_of_[static_cast<size_t>(var)];
    Bitset& mask = masks_[static_cast<size_t>(slot)];
    if (!touched_[static_cast<size_t>(slot)]) {
      mask = colouring_;
      if (!want_red) mask.FlipAll();
      touched_[static_cast<size_t>(slot)] = 1;
      return;
    }
    if (want_red) {
      mask.IntersectWith(colouring_);
    } else {
      mask.IntersectWithComplement(colouring_);
    }
  }

  const std::vector<Disequality>& disequalities_;
  std::vector<int> endpoint_vars_;
  std::vector<int> slot_of_;
  std::vector<Bitset> masks_;
  std::vector<char> touched_;
  std::vector<DomainRestriction> restrictions_;
  Bitset colouring_;
};

}  // namespace internal

using internal::TrialOverlay;

ColourCodingEdgeFreeOracle::ColourCodingEdgeFreeOracle(
    const Query& q, HomOracle* hom, uint32_t universe_size,
    const ColourCodingOptions& opts)
    : query_(q),
      hom_(hom),
      universe_(universe_size),
      trials_per_call_(
          NumTrials(q.disequalities().size(), opts.per_call_failure)),
      opts_(opts),
      hom_ctx_(hom->SupportsConcurrentDecides() ? hom->CreateContext()
                                                : nullptr) {
  overlays_.push_back(std::make_unique<TrialOverlay>(q));
}

ColourCodingEdgeFreeOracle::ColourCodingEdgeFreeOracle(
    const ColourCodingEdgeFreeOracle& parent, std::unique_ptr<HomContext> ctx)
    : query_(parent.query_),
      hom_(parent.hom_),
      universe_(parent.universe_),
      trials_per_call_(parent.trials_per_call_),
      opts_(parent.opts_),
      hom_ctx_(std::move(ctx)) {
  // Forks never fan out further: one lane, inline trials.
  opts_.pool = nullptr;
  opts_.lanes = 1;
  overlays_.push_back(std::make_unique<TrialOverlay>(query_));
}

ColourCodingEdgeFreeOracle::~ColourCodingEdgeFreeOracle() = default;

std::unique_ptr<EdgeFreeOracle> ColourCodingEdgeFreeOracle::Fork() {
  if (!hom_->SupportsConcurrentDecides()) return nullptr;
  std::unique_ptr<HomContext> ctx = hom_->CreateContext();
  if (ctx == nullptr) return nullptr;
  return std::unique_ptr<EdgeFreeOracle>(
      new ColourCodingEdgeFreeOracle(*this, std::move(ctx)));
}

void ColourCodingEdgeFreeOracle::EnsureLaneState() {
  const int lanes = std::max(1, opts_.lanes);
  while (static_cast<int>(overlays_.size()) < lanes) {
    overlays_.push_back(std::make_unique<TrialOverlay>(query_));
  }
  if (lane_ctxs_.empty()) {
    // Lane 0 reuses the oracle's own context; others get fresh ones.
    lane_ctxs_.resize(lanes);
    for (int l = 1; l < lanes; ++l) lane_ctxs_[l] = hom_->CreateContext();
  }
}

bool ColourCodingEdgeFreeOracle::IsEdgeFree(const PartiteSubset& parts) {
  ++num_calls_;
  assert(static_cast<int>(parts.parts.size()) == query_.num_free());

  // Base domains: free variable i restricted to V_i, existentials free.
  // Fixed across all trials of this call (Lemma 22): the oracle hoists
  // every base-dependent cost out of the trial loop via Prepare.
  VarDomains base;
  base.allowed.resize(static_cast<size_t>(query_.num_vars()));
  for (int i = 0; i < query_.num_free(); ++i) {
    base.allowed[static_cast<size_t>(i)] = parts.parts[i];
    base.allowed[static_cast<size_t>(i)].Resize(universe_, false);
    // Fast path: an empty V_i admits no edge (word-parallel scan).
    if (base.allowed[static_cast<size_t>(i)].None()) return true;
  }

  const auto& disequalities = query_.disequalities();
  TrialOverlay& overlay = *overlays_[0];
  std::unique_ptr<PreparedHom> prepared =
      hom_->Prepare(base, overlay.endpoint_vars(), hom_ctx_.get());
  if (disequalities.empty()) {
    return !prepared->Decide({});
  }

  // Colourings are a pure function of (seed, subset, trial): every lane
  // and every fork draws the identical masks for trial t of this subset.
  const uint64_t call_seed =
      DeriveSeed(opts_.seed, HashPartiteSubset(parts));

  const bool fan_out = opts_.pool != nullptr && opts_.lanes > 1 &&
                       trials_per_call_ >= kMinTrialsForFanout &&
                       hom_ctx_ != nullptr;
  if (!fan_out) {
    for (uint64_t trial = 0; trial < trials_per_call_; ++trial) {
      // Trial-batch checkpoint: a fired governor truncates the loop (the
      // enclosing governed work unit is discarded wholesale, so the
      // truncated verdict never feeds a reported estimate).
      if ((trial & 63u) == 0u && opts_.governor != nullptr &&
          opts_.governor->Check() != GovernanceState::kRunning) {
        break;
      }
      Rng trial_rng(DeriveSeed(call_seed, trial));
      const std::vector<DomainRestriction>& extra =
          overlay.Draw(trial_rng, universe_);
      if (prepared->Decide(extra)) return false;  // Witness: has an edge.
    }
    return true;
  }

  // Lane-partitioned trial loop. The verdict is an OR over deterministic
  // per-trial outcomes, so the early-exit flag affects work, never the
  // result.
  EnsureLaneState();
  std::atomic<bool> witness{false};
  opts_.pool->ParallelForLanes(
      static_cast<size_t>(trials_per_call_), opts_.lanes,
      [&](int lane, size_t trial) {
        if (witness.load(std::memory_order_relaxed)) return;
        // Latched-state read only (no clock probe on worker lanes): once
        // the governor fires, remaining trials become no-ops.
        if (opts_.governor != nullptr && opts_.governor->fired()) return;
        Rng trial_rng(DeriveSeed(call_seed, trial));
        TrialOverlay& lane_overlay = *overlays_[static_cast<size_t>(lane)];
        const std::vector<DomainRestriction>& extra =
            lane_overlay.Draw(trial_rng, universe_);
        HomContext* ctx =
            lane == 0 ? hom_ctx_.get() : lane_ctxs_[static_cast<size_t>(lane)].get();
        if (prepared->Decide(extra, *ctx)) {
          witness.store(true, std::memory_order_relaxed);
        }
      });
  return !witness.load(std::memory_order_relaxed);
}

bool DecideAnySolution(const Query& q, HomOracle* hom, uint32_t universe_size,
                       const VarDomains& base_domains, double delta,
                       Rng& rng) {
  const auto& disequalities = q.disequalities();
  if (disequalities.empty()) {
    return hom->Decide(base_domains);
  }
  TrialOverlay overlay(q);
  std::unique_ptr<PreparedHom> prepared =
      hom->Prepare(base_domains, overlay.endpoint_vars());
  const uint64_t trials = NumTrials(disequalities.size(), delta);
  for (uint64_t trial = 0; trial < trials; ++trial) {
    const std::vector<DomainRestriction>& extra =
        overlay.Draw(rng, universe_size);
    if (prepared->Decide(extra)) return true;
  }
  return false;
}

}  // namespace cqcount
