#include "counting/colour_coding.h"

#include <cassert>
#include <cmath>

namespace cqcount {
namespace {

// Q = ceil(ln(1/delta')) * 4^{|Delta|}, clamped to at least one trial.
uint64_t NumTrials(size_t num_disequalities, double per_call_failure) {
  const double log_term = std::ceil(std::log(1.0 / per_call_failure));
  double trials = std::max(1.0, log_term);
  for (size_t i = 0; i < num_disequalities; ++i) trials *= 4.0;
  // Clamp to something addressable; ||phi|| is a parameter, so this is the
  // paper's exp(O(||phi||^2)) factor showing up in practice.
  return static_cast<uint64_t>(std::min(trials, 1e15));
}

// Intersects `domain` (resizing an unrestricted mask on demand) with the
// colour class of `value_is_red` for one endpoint of a disequality.
void RestrictToColour(std::vector<bool>& domain,
                      const std::vector<bool>& colouring, bool want_red,
                      uint32_t universe) {
  if (domain.empty()) {
    // Unrestricted domain: the intersection IS the colour class. Copy and
    // flip are word-parallel on vector<bool>, unlike the per-bit loop.
    assert(colouring.size() == universe);
    domain = colouring;
    if (!want_red) domain.flip();
    return;
  }
  for (uint32_t w = 0; w < universe; ++w) {
    if (domain[w] && colouring[w] != want_red) domain[w] = false;
  }
}

}  // namespace

ColourCodingEdgeFreeOracle::ColourCodingEdgeFreeOracle(
    const Query& q, HomOracle* hom, uint32_t universe_size,
    const ColourCodingOptions& opts)
    : query_(q),
      hom_(hom),
      universe_(universe_size),
      trials_per_call_(
          NumTrials(q.disequalities().size(), opts.per_call_failure)),
      rng_(opts.seed) {}

bool ColourCodingEdgeFreeOracle::IsEdgeFree(const PartiteSubset& parts) {
  ++num_calls_;
  assert(static_cast<int>(parts.parts.size()) == query_.num_free());

  // Base domains: free variable i restricted to V_i, existentials free.
  VarDomains base;
  base.allowed.resize(query_.num_vars());
  for (int i = 0; i < query_.num_free(); ++i) {
    base.allowed[i] = parts.parts[i];
    base.allowed[i].resize(universe_, false);
  }
  // Fast path: an empty V_i admits no edge.
  for (int i = 0; i < query_.num_free(); ++i) {
    bool any = false;
    for (bool b : base.allowed[i]) {
      if (b) {
        any = true;
        break;
      }
    }
    if (!any) return true;
  }

  const auto& disequalities = query_.disequalities();
  if (disequalities.empty()) {
    return !hom_->Decide(base);
  }

  for (uint64_t trial = 0; trial < trials_per_call_; ++trial) {
    VarDomains domains = base;
    for (const Disequality& d : disequalities) {
      // f_eta : U(D) -> {r, b} uniformly at random; the smaller endpoint
      // must land red, the larger blue (Definition 26's R_eta / B_eta).
      std::vector<bool> colouring = rng_.RandomMask(universe_, 0.5);
      RestrictToColour(domains.allowed[d.lhs], colouring, /*want_red=*/true,
                       universe_);
      RestrictToColour(domains.allowed[d.rhs], colouring, /*want_red=*/false,
                       universe_);
    }
    if (hom_->Decide(domains)) return false;  // Witness found: has an edge.
  }
  return true;
}

bool DecideAnySolution(const Query& q, HomOracle* hom, uint32_t universe_size,
                       const VarDomains& base_domains, double delta,
                       Rng& rng) {
  const auto& disequalities = q.disequalities();
  if (disequalities.empty()) {
    return hom->Decide(base_domains);
  }
  const uint64_t trials = NumTrials(disequalities.size(), delta);
  for (uint64_t trial = 0; trial < trials; ++trial) {
    VarDomains domains = base_domains;
    if (domains.allowed.empty()) domains.allowed.resize(q.num_vars());
    for (const Disequality& d : disequalities) {
      std::vector<bool> colouring = rng.RandomMask(universe_size, 0.5);
      RestrictToColour(domains.allowed[d.lhs], colouring, true,
                       universe_size);
      RestrictToColour(domains.allowed[d.rhs], colouring, false,
                       universe_size);
    }
    if (hom->Decide(domains)) return true;
  }
  return false;
}

}  // namespace cqcount
