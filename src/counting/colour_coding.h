// Colour-coding simulation of the EdgeFree oracle (Lemma 30 + Lemma 22).
//
// EdgeFree(H(phi,D)[V_1..V_l]) holds iff NO collection f of per-disequality
// colourings f_eta : U(D) -> {r,b} admits a homomorphism from A-hat(phi) to
// B-hat(phi,D,V_1..V_l,f). The simulation samples
// Q = ceil(ln(1/delta')) * 4^{|Delta|} colourings uniformly; each gives one
// Hom query. A homomorphism respecting a colouring yields an edge
// (sound); a present edge is missed with probability at most delta'
// (each trial succeeds with probability >= 4^{-|Delta|}, Lemma 22).
//
// The Hom instances are passed to the oracle virtually: all of A-hat's
// additions are unary, so the instance is exactly "phi's positive/negated
// atoms + per-variable domain restrictions" (cross-validated against the
// materialised Definitions 26/28 in tests).
#ifndef CQCOUNT_COUNTING_COLOUR_CODING_H_
#define CQCOUNT_COUNTING_COLOUR_CODING_H_

#include <cstdint>
#include <memory>

#include "counting/partite_hypergraph.h"
#include "hom/hom_oracle.h"
#include "query/query.h"
#include "util/random.h"

namespace cqcount {

namespace internal {
class TrialOverlay;
}  // namespace internal

/// Tuning for the colour-coding simulation.
struct ColourCodingOptions {
  /// Per-IsEdgeFree-call failure probability delta' (one-sided: only
  /// "edge-free" answers can be wrong).
  double per_call_failure = 1e-4;
  /// Deterministic seed for the colouring sampler.
  uint64_t seed = 0x5EEDC01DULL;
};

/// EdgeFree oracle implemented by colour-coded Hom queries (Lemma 22).
class ColourCodingEdgeFreeOracle : public EdgeFreeOracle {
 public:
  /// `hom` must outlive the oracle; `universe_size` = |U(D)|.
  ColourCodingEdgeFreeOracle(const Query& q, HomOracle* hom,
                             uint32_t universe_size,
                             const ColourCodingOptions& opts);
  ~ColourCodingEdgeFreeOracle() override;

  bool IsEdgeFree(const PartiteSubset& parts) override;

  /// Number of colouring trials used per oracle call (Q).
  uint64_t trials_per_call() const { return trials_per_call_; }
  /// Total Hom queries issued.
  uint64_t hom_queries() const { return hom_->num_calls(); }

 private:
  const Query& query_;
  HomOracle* hom_;
  uint32_t universe_;
  uint64_t trials_per_call_;
  Rng rng_;
  // Reusable per-trial endpoint-mask builder (only the <= 2|Delta|
  // disequality endpoint domains change across trials).
  std::unique_ptr<internal::TrialOverlay> overlay_;
};

/// Amplified decision "does (phi, D) have any solution?" via colour-coded
/// Hom queries; wrong (false negative) with probability <= delta. Used for
/// the l = 0 case and for answer-membership tests.
bool DecideAnySolution(const Query& q, HomOracle* hom, uint32_t universe_size,
                       const VarDomains& base_domains, double delta, Rng& rng);

}  // namespace cqcount

#endif  // CQCOUNT_COUNTING_COLOUR_CODING_H_
