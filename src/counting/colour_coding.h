// Colour-coding simulation of the EdgeFree oracle (Lemma 30 + Lemma 22).
//
// EdgeFree(H(phi,D)[V_1..V_l]) holds iff NO collection f of per-disequality
// colourings f_eta : U(D) -> {r,b} admits a homomorphism from A-hat(phi) to
// B-hat(phi,D,V_1..V_l,f). The simulation samples
// Q = ceil(ln(1/delta')) * 4^{|Delta|} colourings uniformly; each gives one
// Hom query. A homomorphism respecting a colouring yields an edge
// (sound); a present edge is missed with probability at most delta'
// (each trial succeeds with probability >= 4^{-|Delta|}, Lemma 22).
//
// The Hom instances are passed to the oracle virtually: all of A-hat's
// additions are unary, so the instance is exactly "phi's positive/negated
// atoms + per-variable domain restrictions" (cross-validated against the
// materialised Definitions 26/28 in tests).
//
// Randomness / determinism model: the colourings of one IsEdgeFree call
// are drawn from Rng(DeriveSeed(seed, HashPartiteSubset(V_1..V_l)));
// trial t of the call uses the derived stream DeriveSeed(call_seed, t).
// Two consequences, both deliberate:
//   - Every fork of the oracle (worker lanes of the parallel estimator)
//     answers a given subset exactly as the root would, so estimates are
//     bit-identical at any thread count.
//   - Repeat queries of one subset reuse the same colourings: the oracle
//     behaves like a single fixed random object over the subset lattice,
//     which is the shape the Theorem 17 estimator conditions on (its
//     failure bound union-bounds over the distinct subsets queried).
// Within one call, trials partition across lanes via the executor; the
// verdict is an OR of per-trial outcomes, so early exit does not affect
// the result, only the work.
#ifndef CQCOUNT_COUNTING_COLOUR_CODING_H_
#define CQCOUNT_COUNTING_COLOUR_CODING_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "counting/partite_hypergraph.h"
#include "hom/hom_oracle.h"
#include "query/query.h"
#include "util/cancel.h"
#include "util/executor.h"
#include "util/random.h"

namespace cqcount {

namespace internal {
class TrialOverlay;
}  // namespace internal

/// Tuning for the colour-coding simulation.
struct ColourCodingOptions {
  /// Per-IsEdgeFree-call failure probability delta' (one-sided: only
  /// "edge-free" answers can be wrong).
  double per_call_failure = 1e-4;
  /// Deterministic seed for the colouring sampler.
  uint64_t seed = 0x5EEDC01DULL;
  /// Worker pool for fanning one call's colouring trials across lanes
  /// (not owned; null = run trials inline). Only used when the Hom oracle
  /// supports concurrent decides.
  Executor* pool = nullptr;
  /// Lanes the trial loop may be partitioned across (<= 1 = inline).
  int lanes = 1;
  /// Cooperative governance (not owned; null = ungoverned). A fired
  /// governor makes the trial loop stop early and answer "edge-free";
  /// that answer is only ever consumed by an enclosing governed estimator,
  /// which re-checks the sticky latch and discards the whole work unit, so
  /// a truncated verdict never reaches a reported estimate.
  const ResourceGovernor* governor = nullptr;
};

/// EdgeFree oracle implemented by colour-coded Hom queries (Lemma 22).
class ColourCodingEdgeFreeOracle : public EdgeFreeOracle {
 public:
  /// `hom` must outlive the oracle; `universe_size` = |U(D)|.
  ColourCodingEdgeFreeOracle(const Query& q, HomOracle* hom,
                             uint32_t universe_size,
                             const ColourCodingOptions& opts);
  ~ColourCodingEdgeFreeOracle() override;

  bool IsEdgeFree(const PartiteSubset& parts) override;

  /// Lane fork (see EdgeFreeOracle::Fork): shares the Hom oracle's
  /// immutable state through a private HomContext; answers every subset
  /// identically to the parent (subset-keyed colourings). Null when the
  /// Hom oracle has no concurrent path.
  std::unique_ptr<EdgeFreeOracle> Fork() override;

  /// Number of colouring trials used per oracle call (Q).
  uint64_t trials_per_call() const { return trials_per_call_; }
  /// Total Hom queries issued.
  uint64_t hom_queries() const { return hom_->num_calls(); }

 private:
  // Fork constructor: private context, no further fan-out.
  ColourCodingEdgeFreeOracle(const ColourCodingEdgeFreeOracle& parent,
                             std::unique_ptr<HomContext> ctx);

  // Lane state for the trial-parallel path (created on first use).
  void EnsureLaneState();

  const Query& query_;
  HomOracle* hom_;
  uint32_t universe_;
  uint64_t trials_per_call_;
  ColourCodingOptions opts_;
  // Per-oracle Hom evaluation context (null for oracles whose Hom oracle
  // has no concurrent path: they use the oracle's default context).
  std::unique_ptr<HomContext> hom_ctx_;
  // Reusable per-trial endpoint-mask builder (only the <= 2|Delta|
  // disequality endpoint domains change across trials). Index 0 serves
  // the sequential path; lanes >= 1 are created by EnsureLaneState.
  std::vector<std::unique_ptr<internal::TrialOverlay>> overlays_;
  // Lane HomContexts for trial-parallel decides (lane 0 = hom_ctx_).
  std::vector<std::unique_ptr<HomContext>> lane_ctxs_;
};

/// Amplified decision "does (phi, D) have any solution?" via colour-coded
/// Hom queries; wrong (false negative) with probability <= delta. Used for
/// the l = 0 case and for answer-membership tests.
bool DecideAnySolution(const Query& q, HomOracle* hom, uint32_t universe_size,
                       const VarDomains& base_domains, double delta, Rng& rng);

}  // namespace cqcount

#endif  // CQCOUNT_COUNTING_COLOUR_CODING_H_
