#include "counting/exact_count.h"

#include <functional>

#include "decomposition/width_measures.h"
#include "hom/backtracking.h"
#include "hom/decomposition_solver.h"

namespace cqcount {

uint64_t ExactCountAnswersBruteForce(const Query& q, const Database& db) {
  return CountAnswersBrute(q, db);
}

StatusOr<uint64_t> ExactCountAnswersExtension(const Query& q,
                                              const Database& db) {
  if (!q.disequalities().empty()) {
    return Status::InvalidArgument(
        "extension-based counting requires a disequality-free query");
  }
  Status s = q.CheckAgainstDatabase(db);
  if (!s.ok()) return s;

  Hypergraph h = q.BuildHypergraph();
  FWidthResult width = ComputeDecomposition(h, WidthObjective::kTreewidth);
  DecompositionSolver solver(q, db, std::move(width.decomposition));

  const int num_free = q.num_free();
  const uint32_t n = db.universe_size();
  VarDomains domains;
  domains.allowed.resize(q.num_vars());

  uint64_t count = 0;
  // DFS over free-variable prefixes; a prefix is expanded only if it is
  // extendable to a full solution, so the work is output-sensitive.
  std::function<void(int)> dfs = [&](int depth) {
    if (depth == num_free) {
      ++count;
      return;
    }
    for (Value w = 0; w < n; ++w) {
      domains.allowed[depth].Assign(n, false);
      domains.allowed[depth].Set(w);
      if (solver.Decide(&domains)) dfs(depth + 1);
    }
    domains.allowed[depth].Assign(0, false);
  };
  if (num_free == 0) {
    return static_cast<uint64_t>(solver.Decide(nullptr) ? 1 : 0);
  }
  dfs(0);
  return count;
}

StatusOr<double> ExactCountSolutionsDp(const Query& q, const Database& db) {
  if (!q.disequalities().empty()) {
    return Status::InvalidArgument(
        "the counting DP requires a disequality-free query");
  }
  Status s = q.CheckAgainstDatabase(db);
  if (!s.ok()) return s;
  Hypergraph h = q.BuildHypergraph();
  FWidthResult width = ComputeDecomposition(h, WidthObjective::kTreewidth);
  DecompositionSolver solver(q, db, std::move(width.decomposition));
  return solver.CountSolutions(nullptr);
}

}  // namespace cqcount
