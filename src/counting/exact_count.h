// Exact baselines for |Ans(phi, D)| and |Sol(phi, D)|.
//
// These are the ground truths the approximation schemes are validated
// against, and the "intractable side" of the paper's dichotomies in the
// benches: exact answer counting is #W[1]-hard already for very simple
// query classes (Dell-Roth-Wellnitz), so everything here is exponential in
// the query size in general.
#ifndef CQCOUNT_COUNTING_EXACT_COUNT_H_
#define CQCOUNT_COUNTING_EXACT_COUNT_H_

#include <cstdint>

#include "decomposition/tree_decomposition.h"
#include "query/query.h"
#include "relational/structure.h"
#include "util/status.h"

namespace cqcount {

/// |Ans(phi, D)| by enumerating all solutions and deduplicating their
/// projections. Works for every ECQ; exponential in general.
uint64_t ExactCountAnswersBruteForce(const Query& q, const Database& db);

/// |Ans(phi, D)| with polynomial delay per answer: depth-first search over
/// free-variable prefixes, pruned by a tree-decomposition extendability
/// check. Cost ~ O(|Ans| * l * |U(D)| * poly(||D||)). Requires a
/// disequality-free query (disequalities break the extendability oracle).
StatusOr<uint64_t> ExactCountAnswersExtension(const Query& q,
                                              const Database& db);

/// |Sol(phi, D)| exactly via the tree-decomposition counting DP
/// (polynomial for bounded-width H(phi)). Requires no disequalities.
StatusOr<double> ExactCountSolutionsDp(const Query& q, const Database& db);

}  // namespace cqcount

#endif  // CQCOUNT_COUNTING_EXACT_COUNT_H_
