// Approximate counting for unions of (extended) conjunctive queries
// (Section 6, via the Karp-Luby union technique [30]).
//
// |Ans(phi_1) u .. u Ans(phi_k)| is estimated from per-query approximate
// counts c_i, approximate uniform samples from each Ans(phi_i), and
// membership tests: sample i proportional to c_i, draw tau from
// Ans(phi_i), and average the indicator [i = min{j : tau in Ans(phi_j)}]
// scaled by sum_i c_i.
#ifndef CQCOUNT_COUNTING_UNION_COUNT_H_
#define CQCOUNT_COUNTING_UNION_COUNT_H_

#include <vector>

#include "counting/fptras.h"
#include "query/query.h"
#include "relational/structure.h"
#include "util/status.h"

namespace cqcount {

/// Tuning for ApproxCountUnion.
struct UnionOptions {
  ApproxOptions approx;
  /// Cap on Karp-Luby samples (the theoretical requirement is
  /// O(k log(1/delta) / epsilon^2)).
  int max_samples = 20000;
};

/// Result of a union count.
struct UnionCountResult {
  double estimate = 0.0;
  /// Per-query approximate counts.
  std::vector<double> per_query;
  /// Karp-Luby samples actually used.
  int samples = 0;
};

/// Approximates |union_i Ans(phi_i, D)|. All queries must share the same
/// number of free variables (answers are compared positionally).
StatusOr<UnionCountResult> ApproxCountUnion(const std::vector<Query>& queries,
                                            const Database& db,
                                            const UnionOptions& opts);

/// Exact union count by brute force (baseline for tests and benches).
uint64_t ExactCountUnionBruteForce(const std::vector<Query>& queries,
                                   const Database& db);

}  // namespace cqcount

#endif  // CQCOUNT_COUNTING_UNION_COUNT_H_
