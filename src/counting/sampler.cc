#include "counting/sampler.h"

#include <cassert>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace cqcount {
namespace {

// One add per public sampler operation — never inside the JVV descent.
struct SamplerMetrics {
  obs::Counter& samples = obs::MetricRegistry::Global().GetCounter(
      "sampler.samples", "Answer tuples drawn via the JVV descent");
  obs::Counter& rejections = obs::MetricRegistry::Global().GetCounter(
      "sampler.membership_checks",
      "Amplified membership decisions (Member calls)");

  static SamplerMetrics& Get() {
    static SamplerMetrics* metrics = new SamplerMetrics();
    return *metrics;
  }
};

// Eager registration at load: every metric name appears in `stats` JSON
// (schema validation) even on code paths that never touch it.
[[maybe_unused]] const SamplerMetrics& kSamplerMetricsInit = SamplerMetrics::Get();

// EdgeFree oracle restricted to a box: local part i indexes the global
// range [lo_i, lo_i + size_i).
class BoxRestrictedOracle : public EdgeFreeOracle {
 public:
  BoxRestrictedOracle(EdgeFreeOracle* base, uint32_t universe,
                      const std::vector<std::pair<uint32_t, uint32_t>>& box)
      : base_(base), universe_(universe), box_(box) {}

  bool IsEdgeFree(const PartiteSubset& parts) override {
    ++num_calls_;
    PartiteSubset global;
    global.parts.resize(parts.parts.size());
    for (size_t i = 0; i < parts.parts.size(); ++i) {
      const Bitset& local_mask = parts.parts[i];
      Bitset& global_mask = global.parts[i];
      global_mask.Assign(universe_, false);
      for (size_t local = local_mask.FindNext(0); local < local_mask.size();
           local = local_mask.FindNext(local + 1)) {
        global_mask.Set(box_[i].first + local);
      }
    }
    return base_->IsEdgeFree(global);
  }

  // Fork = box view over a fork of the base oracle (lets the DLM
  // estimation inside one descent sub-count fan across lanes).
  std::unique_ptr<EdgeFreeOracle> Fork() override {
    std::unique_ptr<EdgeFreeOracle> base_fork = base_->Fork();
    if (base_fork == nullptr) return nullptr;
    auto fork = std::make_unique<BoxRestrictedOracle>(base_fork.get(),
                                                      universe_, box_);
    fork->owned_base_ = std::move(base_fork);
    return fork;
  }

 private:
  EdgeFreeOracle* base_;
  uint32_t universe_;
  const std::vector<std::pair<uint32_t, uint32_t>>& box_;
  std::unique_ptr<EdgeFreeOracle> owned_base_;
};

}  // namespace

AnswerSampler::AnswerSampler(const Query& q, const Database& db,
                             const SamplerOptions& opts)
    : query_(q), db_(db), opts_(opts), rng_(opts.approx.seed ^ 0x5A5A5A5AULL) {
  Hypergraph h = q.BuildHypergraph();
  FWidthResult width =
      opts.approx.precomputed_decomposition
          ? *opts.approx.precomputed_decomposition
          : ComputeDecomposition(h, opts.approx.objective,
                                 opts.approx.exact_decomposition_limit);
  width_ = width.width;
  hom_ = std::make_unique<DecompositionHomOracle>(q, db,
                                                  width.decomposition);
  ColourCodingOptions cc;
  cc.per_call_failure =
      opts.approx.per_call_failure_override > 0.0
          ? opts.approx.per_call_failure_override
          : opts.approx.delta /
                (2.0 *
                 static_cast<double>(opts.approx.dlm.max_oracle_calls));
  cc.seed = opts.approx.seed ^ 0x1234567ULL;
  cc.governor = opts.approx.governor;
  oracle_ = std::make_unique<ColourCodingEdgeFreeOracle>(
      q, hom_.get(), db.universe_size(), cc);
  // Zone-map pruning: every positive atom that places a free variable at
  // some column is a necessary condition on that variable's value — if
  // the relation's zone maps prove no row has a column value inside the
  // descent box's range for the variable, the box holds no answers and
  // its sub-count is exactly 0 (sound: zone maps are exact per-block
  // bounds; only positive atoms constrain this way). Pruning never
  // touches RNG state — descent seeds are drawn by the caller before the
  // sub-counts run — so samples are bit-identical with pruning on or off.
  for (const Atom& atom : q.atoms()) {
    if (atom.negated || !db.HasRelation(atom.relation)) continue;
    const ZoneMaps* zones = db.relation(atom.relation).zone_maps();
    if (zones == nullptr) continue;
    for (size_t p = 0; p < atom.vars.size(); ++p) {
      if (atom.vars[p] < q.num_free()) {
        zone_probes_.push_back(
            {zones, static_cast<int>(p), atom.vars[p]});
      }
    }
  }
}

StatusOr<std::unique_ptr<AnswerSampler>> AnswerSampler::Create(
    const Query& q, const Database& db, const SamplerOptions& opts) {
  Status s = q.Validate();
  if (!s.ok()) return s;
  s = q.CheckAgainstDatabase(db);
  if (!s.ok()) return s;
  if (q.num_free() < 1) {
    return Status::InvalidArgument("sampling requires >= 1 free variable");
  }
  if (db.universe_size() == 0) {
    return Status::InvalidArgument("empty universe");
  }
  return std::unique_ptr<AnswerSampler>(new AnswerSampler(q, db, opts));
}

StatusOr<Tuple> AnswerSampler::SampleOne() {
  obs::Span span("sampler.sample_one");
  SamplerMetrics::Get().samples.Increment();
  const int l = query_.num_free();
  const uint32_t n = db_.universe_size();
  std::vector<std::pair<uint32_t, uint32_t>> box(l, {0u, n});

  // Counts the answers inside `b` (exact when small) on a given oracle
  // view. Seeds are drawn by the caller in descent order, so the pair of
  // sub-counts of one level may evaluate concurrently: each count is a
  // pure function of (box, seed) — the oracle answers subsets
  // deterministically (subset-keyed colourings). `lanes` > 1 lets the
  // count fan out internally; the cheap descent sub-counts run inline
  // (pair-level parallelism already covers them, and per-call forking of
  // the oracle stack would dominate their cost).
  auto count_box = [&](const std::vector<std::pair<uint32_t, uint32_t>>& b,
                       uint64_t seed, EdgeFreeOracle* base,
                       int lanes) -> StatusOr<double> {
    // Zone-map pruning: a provably empty box counts 0 without spending
    // any oracle budget (and without advancing any RNG — the seed was
    // drawn by the caller).
    if (!zone_probes_.empty()) {
      static obs::Counter& zone_probes_metric =
          obs::MetricRegistry::Global().GetCounter(
              "storage.zone_probes",
              "zone-map emptiness probes before sub-counts");
      static obs::Counter& zone_prunes_metric =
          obs::MetricRegistry::Global().GetCounter(
              "storage.zone_prunes",
              "sub-box counts skipped because zone maps proved them empty");
      uint64_t probes = 0;
      for (const ZoneProbe& probe : zone_probes_) {
        ++probes;
        if (!probe.zones->MaybeHasValueInRange(
                probe.col, b[static_cast<size_t>(probe.var)].first,
                b[static_cast<size_t>(probe.var)].second)) {
          zone_probes_metric.Add(probes);
          zone_prunes_metric.Increment();
          return 0.0;
        }
      }
      zone_probes_metric.Add(probes);
    }
    BoxRestrictedOracle restricted(base, n, b);
    std::vector<uint32_t> sizes;
    sizes.reserve(b.size());
    for (const auto& [lo, hi] : b) sizes.push_back(hi - lo);
    DlmOptions dlm = opts_.approx.dlm;
    dlm.epsilon = opts_.descent_epsilon;
    dlm.delta = opts_.descent_delta;
    dlm.seed = seed;
    dlm.pool = lanes > 1 ? opts_.approx.pool : nullptr;
    dlm.intra_threads = lanes;
    dlm.governor = opts_.approx.governor;
    auto result = DlmCountEdges(sizes, restricted, dlm);
    if (!result.ok()) return result.status();
    return result->estimate;
  };

  // Descent sub-counts in parallel: the two halves of each level run on
  // independent forks of the oracle stack (created once, reused across
  // levels and samples). Falls back to sequential evaluation when the
  // stack has no concurrent path.
  const bool want_pair =
      opts_.approx.pool != nullptr && opts_.approx.intra_threads > 1;
  if (want_pair && descent_forks_.empty()) {
    for (int i = 0; i < 2; ++i) {
      std::unique_ptr<EdgeFreeOracle> fork = oracle_->Fork();
      if (fork == nullptr) {
        descent_forks_.clear();
        break;
      }
      descent_forks_.push_back(std::move(fork));
    }
  }
  const bool pair_parallel = want_pair && descent_forks_.size() == 2;

  auto total =
      count_box(box, rng_.Next(), oracle_.get(), opts_.approx.intra_threads);
  if (!total.ok()) return total.status();
  if (*total <= 0.0) return Status::NotFound("answer set is empty");

  for (;;) {
    // Descent-step checkpoint: a sample is the deterministic work unit —
    // an interrupted descent is abandoned wholesale (no partial tuple),
    // surfacing the typed cause.
    if (opts_.approx.governor != nullptr &&
        opts_.approx.governor->Check() != GovernanceState::kRunning) {
      return opts_.approx.governor->ToStatus("sampler descent");
    }
    // Locate the widest dimension; stop when the box is a single cell.
    int widest = -1;
    uint32_t width = 1;
    for (int i = 0; i < l; ++i) {
      const uint32_t w = box[i].second - box[i].first;
      if (w > width) {
        width = w;
        widest = i;
      }
    }
    if (widest < 0) break;
    const auto [lo, hi] = box[widest];
    const uint32_t mid = lo + (hi - lo) / 2;

    auto left = box;
    left[widest] = {lo, mid};
    auto right = box;
    right[widest] = {mid, hi};
    // Seeds drawn in the historical order (left, then right) regardless
    // of how the two counts execute.
    const uint64_t seed_left = rng_.Next();
    const uint64_t seed_right = rng_.Next();
    StatusOr<double> m_left = Status::Internal("not executed");
    StatusOr<double> m_right = m_left;
    if (pair_parallel) {
      opts_.approx.pool->ParallelForLanes(2, 2, [&](int, size_t i) {
        if (i == 0) {
          m_left = count_box(left, seed_left, descent_forks_[0].get(), 1);
        } else {
          m_right = count_box(right, seed_right, descent_forks_[1].get(), 1);
        }
      });
    } else {
      m_left = count_box(left, seed_left, oracle_.get(), 1);
      m_right = count_box(right, seed_right, oracle_.get(), 1);
    }
    if (!m_left.ok()) return m_left.status();
    if (!m_right.ok()) return m_right.status();
    const double total_mass = *m_left + *m_right;
    if (total_mass <= 0.0) {
      return Status::Internal("sampler descended into an empty box");
    }
    box = rng_.UniformDouble() * total_mass < *m_left ? left : right;
  }

  Tuple answer(l);
  for (int i = 0; i < l; ++i) answer[i] = box[i].first;
  return answer;
}

StatusOr<std::vector<Tuple>> AnswerSampler::Sample(int count) {
  std::vector<Tuple> samples;
  samples.reserve(count);
  for (int i = 0; i < count; ++i) {
    auto one = SampleOne();
    if (!one.ok()) return one.status();
    samples.push_back(*std::move(one));
  }
  return samples;
}

bool AnswerSampler::Member(const Tuple& answer, double delta) {
  obs::Span span("sampler.member");
  SamplerMetrics::Get().rejections.Increment();
  assert(static_cast<int>(answer.size()) == query_.num_free());
  const uint32_t n = db_.universe_size();
  VarDomains domains;
  domains.allowed.resize(query_.num_vars());
  for (int i = 0; i < query_.num_free(); ++i) {
    domains.allowed[i].Assign(n, false);
    if (answer[i] < n) domains.allowed[i].Set(answer[i]);
  }
  return DecideAnySolution(query_, hom_.get(), n, domains, delta, rng_);
}

StatusOr<ApproxCountResult> AnswerSampler::EstimateCount(double epsilon,
                                                         double delta) {
  ApproxOptions opts = opts_.approx;
  opts.epsilon = epsilon;
  opts.delta = delta;
  return ApproxCountAnswers(query_, db_, opts);
}

}  // namespace cqcount
