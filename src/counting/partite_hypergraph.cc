#include "counting/partite_hypergraph.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "hom/backtracking.h"
#include "util/random.h"

namespace cqcount {
namespace {

// Fork of the brute-force oracle: scans the parent's (immutable) answer
// relation. Keeps its own call counter.
class BruteForceFork : public EdgeFreeOracle {
 public:
  explicit BruteForceFork(const Relation* answers) : answers_(answers) {}

  bool IsEdgeFree(const PartiteSubset& parts) override {
    ++num_calls_;
    for (TupleView answer : *answers_) {
      bool inside = true;
      for (size_t i = 0; i < answer.size(); ++i) {
        if (!parts.parts[i].Test(answer[i])) {
          inside = false;
          break;
        }
      }
      if (inside) return false;
    }
    return true;
  }

  std::unique_ptr<EdgeFreeOracle> Fork() override {
    return std::make_unique<BruteForceFork>(answers_);
  }

 private:
  const Relation* answers_;
};

}  // namespace

uint64_t HashPartiteSubset(const PartiteSubset& parts) {
  // SplitMix64 fold over (part index, words). The Bitset tail invariant
  // (bits beyond the universe are zero) makes this a pure content hash.
  uint64_t h = 0x8D26'44F9'79AD'5AC1ULL;
  for (size_t i = 0; i < parts.parts.size(); ++i) {
    h = DeriveSeed(h, i);
    const Bitset& mask = parts.parts[i];
    for (size_t w = 0; w < mask.num_words(); ++w) {
      h = DeriveSeed(h, mask.word(w));
    }
  }
  return h;
}

BruteForceEdgeFreeOracle::BruteForceEdgeFreeOracle(const Query& q,
                                                   const Database& db) {
  const int num_free = q.num_free();
  answers_ = Relation(num_free);
  EnumerateSolutions(q, db, [&](const Tuple& solution) {
    Value* dst = answers_.AppendRow();
    for (int i = 0; i < num_free; ++i) dst[i] = solution[i];
    return true;
  });
  // Canonicalisation deduplicates solutions that agree on the free part.
  answers_.Canonicalize();
}

bool BruteForceEdgeFreeOracle::IsEdgeFree(const PartiteSubset& parts) {
  ++num_calls_;
  for (TupleView answer : answers_) {
    bool inside = true;
    for (size_t i = 0; i < answer.size(); ++i) {
      if (!parts.parts[i].Test(answer[i])) {
        inside = false;
        break;
      }
    }
    if (inside) return false;
  }
  return true;
}

std::unique_ptr<EdgeFreeOracle> BruteForceEdgeFreeOracle::Fork() {
  return std::make_unique<BruteForceFork>(&answers_);
}

bool GeneralEdgeFreeAdapter::IsEdgeFree(const GeneralPartiteSubset& parts) {
  assert(static_cast<int>(parts.parts.size()) == num_free_);
  std::vector<int> permutation(num_free_);
  std::iota(permutation.begin(), permutation.end(), 0);
  do {
    // V'_i = W_i cap U_{pi(i)}(D); then V_j = V'_{pi^{-1}(j)}.
    PartiteSubset aligned;
    aligned.parts.assign(num_free_, Bitset(universe_, false));
    bool any_empty = false;
    for (int i = 0; i < num_free_ && !any_empty; ++i) {
      const int position = permutation[i];
      bool nonempty = false;
      for (uint64_t encoded : parts.parts[i]) {
        const int pos = static_cast<int>(encoded / universe_);
        const Value value = static_cast<Value>(encoded % universe_);
        if (pos == position) {
          aligned.parts[position].Set(value);
          nonempty = true;
        }
      }
      any_empty = !nonempty;
    }
    if (any_empty) continue;
    if (!aligned_->IsEdgeFree(aligned)) return false;
  } while (std::next_permutation(permutation.begin(), permutation.end()));
  return true;
}

}  // namespace cqcount
