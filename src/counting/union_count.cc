#include "counting/union_count.h"

#include <cmath>
#include <map>
#include <memory>

#include "counting/sampler.h"
#include "hom/backtracking.h"
#include "util/random.h"

namespace cqcount {

StatusOr<UnionCountResult> ApproxCountUnion(const std::vector<Query>& queries,
                                            const Database& db,
                                            const UnionOptions& opts) {
  if (queries.empty()) {
    return Status::InvalidArgument("union of zero queries");
  }
  const int l = queries.front().num_free();
  for (const Query& q : queries) {
    if (q.num_free() != l) {
      return Status::InvalidArgument(
          "all queries in a union must have the same free arity");
    }
  }
  if (l < 1) {
    return Status::InvalidArgument("union counting requires l >= 1");
  }
  const size_t k = queries.size();

  // Per-query counts and samplers.
  UnionCountResult result;
  result.per_query.resize(k, 0.0);
  std::vector<std::unique_ptr<AnswerSampler>> samplers(k);
  double total = 0.0;
  for (size_t i = 0; i < k; ++i) {
    SamplerOptions sopts;
    sopts.approx = opts.approx;
    sopts.approx.seed = opts.approx.seed + 7919 * (i + 1);
    auto sampler = AnswerSampler::Create(queries[i], db, sopts);
    if (!sampler.ok()) return sampler.status();
    samplers[i] = std::move(sampler).value();
    ApproxOptions per_query = opts.approx;
    per_query.epsilon = opts.approx.epsilon / 3.0;
    per_query.delta = opts.approx.delta / (3.0 * static_cast<double>(k));
    auto count = ApproxCountAnswers(queries[i], db, per_query);
    if (!count.ok()) return count.status();
    result.per_query[i] = count->estimate;
    total += count->estimate;
  }
  if (total <= 0.0) {
    result.estimate = 0.0;
    return result;
  }

  // Karp-Luby sampling.
  const int wanted = static_cast<int>(std::ceil(
      4.0 * static_cast<double>(k) * std::log(6.0 / opts.approx.delta) /
      (opts.approx.epsilon * opts.approx.epsilon)));
  const int samples = std::min(wanted, opts.max_samples);
  Rng rng(opts.approx.seed ^ 0xFEEDFACEULL);
  const double member_delta =
      opts.approx.delta /
      (3.0 * static_cast<double>(samples) * static_cast<double>(k));

  double hits = 0.0;
  for (int s = 0; s < samples; ++s) {
    // Choose a query proportional to its count.
    double r = rng.UniformDouble() * total;
    size_t chosen = 0;
    for (; chosen + 1 < k; ++chosen) {
      if (r < result.per_query[chosen]) break;
      r -= result.per_query[chosen];
    }
    auto tau = samplers[chosen]->SampleOne();
    if (!tau.ok()) return tau.status();
    // Is `chosen` the first query containing tau?
    bool is_first = true;
    for (size_t j = 0; j < chosen; ++j) {
      if (samplers[j]->Member(*tau, member_delta)) {
        is_first = false;
        break;
      }
    }
    if (is_first) hits += 1.0;
  }
  result.samples = samples;
  result.estimate = total * hits / static_cast<double>(samples);
  return result;
}

uint64_t ExactCountUnionBruteForce(const std::vector<Query>& queries,
                                   const Database& db) {
  // One flat accumulator per free arity: tuples of different arities are
  // never equal, so deduping within each arity and summing matches the
  // old mixed-arity set semantics.
  std::map<int, Relation> answers_by_arity;
  for (const Query& q : queries) {
    const int num_free = q.num_free();
    auto [it, inserted] = answers_by_arity.emplace(num_free,
                                                   Relation(num_free));
    Relation& answers = it->second;
    EnumerateSolutions(q, db, [&](const Tuple& solution) {
      Value* dst = answers.AppendRow();
      for (int i = 0; i < num_free; ++i) dst[i] = solution[i];
      return true;
    });
  }
  uint64_t total = 0;
  for (auto& [arity, answers] : answers_by_arity) {
    answers.Canonicalize();
    total += answers.size();
  }
  return total;
}

}  // namespace cqcount
