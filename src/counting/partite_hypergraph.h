// The answer hypergraph H(phi, D) of Definition 24, as an implicit view.
//
// H(phi,D) is l-partite and l-uniform: part i is U(D) x {i} and the
// hyperedges are exactly the answers of (phi, D) (Observation 25). The
// estimators never materialise it; all access goes through the EdgeFree
// oracle below, which is the oracle of Theorem 17 restricted to
// position-aligned parts V_i subseteq U_i(D). (Lemma 22 reduces arbitrary
// l-partite subsets to at most l! aligned calls; see
// GeneralEdgeFreeAdapter.)
#ifndef CQCOUNT_COUNTING_PARTITE_HYPERGRAPH_H_
#define CQCOUNT_COUNTING_PARTITE_HYPERGRAPH_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "query/query.h"
#include "relational/structure.h"
#include "util/bitset.h"

namespace cqcount {

/// Position-aligned l-partite subset: parts[i] is a packed membership
/// mask over U(D) describing V_i subseteq U_i(D).
struct PartiteSubset {
  std::vector<Bitset> parts;
};

/// Deterministic content hash of a subset (order of parts significant,
/// representation-independent thanks to the Bitset tail invariant). The
/// colour-coding oracle keys its per-call randomness on this, so every
/// worker lane — and every repeat query of the same subset — sees the
/// same colourings: the oracle behaves like one fixed random object, as
/// the Theorem 17 estimator assumes.
uint64_t HashPartiteSubset(const PartiteSubset& parts);

/// Oracle for the predicate EdgeFree(H(phi,D)[V_1..V_l]) (Theorem 17).
class EdgeFreeOracle {
 public:
  virtual ~EdgeFreeOracle() = default;

  /// True iff no answer tau has tau(x_i) in V_i for every free variable i.
  virtual bool IsEdgeFree(const PartiteSubset& parts) = 0;

  /// Forks an independently-usable view of this oracle for a concurrent
  /// worker lane: the fork shares the receiver's immutable state, owns all
  /// mutable scratch, and answers every subset exactly as the receiver
  /// would (a requirement — the estimator's determinism relies on it).
  /// Returns null when the oracle has no concurrent path (callers must
  /// then stay sequential). Forks must not outlive the receiver.
  virtual std::unique_ptr<EdgeFreeOracle> Fork() { return nullptr; }

  uint64_t num_calls() const {
    return num_calls_.load(std::memory_order_relaxed);
  }

 protected:
  std::atomic<uint64_t> num_calls_{0};
};

/// Ground-truth oracle that enumerates Ans(phi, D) once by brute force and
/// answers queries by scanning it. Exponential set-up; tests only.
class BruteForceEdgeFreeOracle : public EdgeFreeOracle {
 public:
  BruteForceEdgeFreeOracle(const Query& q, const Database& db);

  bool IsEdgeFree(const PartiteSubset& parts) override;

  /// The answer scan is read-only, so forks are trivial views (used by
  /// the determinism tests to exercise the parallel estimator paths).
  std::unique_ptr<EdgeFreeOracle> Fork() override;

  /// The materialised answer set (free-variable tuples, flat storage).
  const Relation& answers() const { return answers_; }

 private:
  Relation answers_;
};

/// Unaligned l-partite subset over V(H(phi,D)): members are encoded as
/// position * |U(D)| + value.
struct GeneralPartiteSubset {
  std::vector<std::vector<uint64_t>> parts;
};

/// The Lemma 22 permutation trick: evaluates EdgeFree for arbitrary
/// l-partite subsets (W_1..W_l) using at most l! aligned oracle calls
/// (H[W_1..W_l] has an edge iff some permutation pi makes
/// H[W_1 cap U_pi(1), ..] have one).
class GeneralEdgeFreeAdapter {
 public:
  GeneralEdgeFreeAdapter(EdgeFreeOracle* aligned, int num_free,
                         uint32_t universe_size)
      : aligned_(aligned), num_free_(num_free), universe_(universe_size) {}

  /// EdgeFree over an arbitrary l-partite subset.
  bool IsEdgeFree(const GeneralPartiteSubset& parts);

 private:
  EdgeFreeOracle* aligned_;
  int num_free_;
  uint32_t universe_;
};

}  // namespace cqcount

#endif  // CQCOUNT_COUNTING_PARTITE_HYPERGRAPH_H_
