// Approximate edge counting with an EdgeFree oracle (the Theorem 17
// interface of Dell-Lapinskas-Meeks [15]).
//
// Internals (DESIGN.md section 4.1): the l-partite product space is
// recursively bisected into "boxes" (products of per-part index ranges).
//  1. Exact phase: the space is pre-partitioned into a fixed number of
//     sub-boxes, each enumerated edge-by-edge with a deterministic count
//     cap (O(sum_i log|V_i|) oracle calls per edge); if the summed count
//     stays within `exact_enumeration_budget` the answer is exact.
//  2. Otherwise, a breadth-first expansion partitions the edge set into at
//     most `max_frontier` non-empty boxes, and each box is estimated by an
//     unbiased pruned Knuth descent (query both halves; the weight doubles
//     only when both are non-empty). Adaptive sampling drives the pooled
//     2-sigma confidence interval below epsilon; an outer median over
//     O(log 1/delta) runs amplifies the confidence.
// All oracle access uses position-aligned parts, exactly the access
// pattern Lemma 22 provides.
//
// Parallelism & determinism: every unit of randomised work — one Knuth
// descent — draws from Rng(DeriveSeed(seed, {run, round, stratum, k})),
// and results merge in index order, so the estimate is a pure function of
// (part_sizes, oracle behaviour, options) — never of scheduling. Work is
// partitioned onto `pool` across `intra_threads` lanes (exact-phase
// sub-boxes, the outer median runs, and per-round sample batches); each
// lane drives its own oracle fork (EdgeFreeOracle::Fork), which must
// answer every subset exactly as the root oracle would. Oracle-call
// budgets are accounted per deterministic unit (per exact-phase task, per
// adaptive run) and checked at round boundaries, keeping converged/cap
// outcomes thread-count-independent. Passing pool = null (or
// intra_threads <= 1, or an oracle without Fork) runs the identical
// partitioned computation inline: fixed-seed estimates are bit-identical
// at ANY lane count.
#ifndef CQCOUNT_COUNTING_DLM_COUNTER_H_
#define CQCOUNT_COUNTING_DLM_COUNTER_H_

#include <cstdint>
#include <vector>

#include "counting/partite_hypergraph.h"
#include "util/cancel.h"
#include "util/estimate_outcome.h"
#include "util/executor.h"
#include "util/status.h"

namespace cqcount {

/// Tuning for the DLM-style estimator.
struct DlmOptions {
  /// Target relative error.
  double epsilon = 0.1;
  /// Target failure probability.
  double delta = 0.1;
  /// Switch from exact enumeration to estimation past this many edges.
  uint64_t exact_enumeration_budget = 1024;
  /// Maximum number of boxes the edge set is partitioned into.
  int max_frontier = 2048;
  /// Knuth-descent samples per box in the first adaptive round.
  int initial_samples_per_box = 8;
  /// Cap on adaptive sampling rounds per run (samples double each round).
  int max_refinement_rounds = 16;
  /// Stratified splitting of high-variance boxes between rounds (the
  /// design choice ablated in bench_ablation): disabling falls back to
  /// sample-doubling only.
  bool enable_stratified_splits = true;
  /// Hard cap on oracle calls (safety valve; hitting it is reported via
  /// `converged = false`). Split deterministically across the adaptive
  /// runs, so cap outcomes are identical at every thread count.
  uint64_t max_oracle_calls = 20'000'000;
  /// Seed for the samplers.
  uint64_t seed = 0xD1CEULL;
  /// Worker pool for intra-estimate parallelism (not owned; null = run
  /// everything inline on the calling thread).
  Executor* pool = nullptr;
  /// Lanes the estimate is partitioned across (<= 1 = inline). Purely a
  /// scheduling knob: the estimate is bit-identical for every value.
  int intra_threads = 1;
  /// Cooperative governance (not owned; null = ungoverned). Polled at
  /// deterministic boundaries only — frontier-expansion iterations,
  /// exact-phase wave boundaries, adaptive round/slice boundaries and run
  /// boundaries — so a quiescent governor never perturbs the arithmetic.
  /// On expiry/cancellation the estimator returns an anytime answer from
  /// the completed runs (DlmResult::partial + interval), or a typed
  /// CANCELLED/DEADLINE_EXCEEDED status when no run completed.
  const ResourceGovernor* governor = nullptr;
  /// Opt-in adaptive early termination of the outer-median run schedule
  /// (the accuracy scheduler's knob; off = bit-identical to the full
  /// schedule). When armed, runs execute strictly in index order (their
  /// per-round batches still fan across lanes) and after each completed
  /// run — a deterministic boundary over merged state — the estimator
  /// stops as soon as either (a) the empirical CLT interval over the
  /// completed counter-seeded runs meets (epsilon, delta), or (b) the
  /// hard median-order bounds over the completed prefix pinch within
  /// epsilon (then the remaining runs provably cannot move the median
  /// outside the target). The stop index is a pure function of the
  /// completed run estimates, so fixed-seed adaptive results (estimate
  /// AND oracle_calls) are reproducible at any lane count.
  bool early_stop = false;
  /// Completed runs required before the early-stop rule is consulted.
  int min_early_stop_runs = 3;
};

/// Estimation result (estimate/exact/converged — plus the anytime-answer
/// partial/lower_bound/upper_bound triple — from EstimateOutcome).
struct DlmResult : EstimateOutcome {
  /// Oracle calls consumed (deterministic per-unit accounting).
  uint64_t oracle_calls = 0;
  /// Adaptive rounds used by the slowest run.
  int refinement_rounds = 0;
  /// Outer-median runs that ran to completion / that were scheduled.
  /// Differ only on partial results (interrupted runs are discarded; the
  /// anytime interval brackets the full-median over all scheduled runs).
  int completed_runs = 0;
  int total_runs = 0;
  /// Intra-estimate parallelism observability.
  ParallelStats parallel;
};

/// Counts edges of the implicit l-partite hypergraph whose part i has
/// `part_sizes[i]` vertices, using only `oracle`. Requires l >= 1.
StatusOr<DlmResult> DlmCountEdges(const std::vector<uint32_t>& part_sizes,
                                  EdgeFreeOracle& oracle,
                                  const DlmOptions& opts);

}  // namespace cqcount

#endif  // CQCOUNT_COUNTING_DLM_COUNTER_H_
