// Approximately uniform answer sampling (Section 6 of the paper).
//
// The counting problems at hand are self-partitionable: splitting a
// free-variable value range splits the answer set. The sampler descends
// the same box partition the DLM estimator uses, choosing halves with
// probability proportional to their (approximately counted) answer
// sub-counts — the Jerrum-Valiant-Vazirani counting-to-sampling direction.
// Sub-counts that resolve exactly (the estimator's enumeration fast path)
// make the descent exactly proportional.
#ifndef CQCOUNT_COUNTING_SAMPLER_H_
#define CQCOUNT_COUNTING_SAMPLER_H_

#include <memory>
#include <vector>

#include "counting/colour_coding.h"
#include "counting/dlm_counter.h"
#include "counting/fptras.h"
#include "counting/partite_hypergraph.h"
#include "hom/hom_oracle.h"
#include "query/query.h"
#include "relational/structure.h"
#include "util/random.h"
#include "util/status.h"

namespace cqcount {

/// Tuning for AnswerSampler.
struct SamplerOptions {
  /// Base options (decomposition objective, seeds, oracle budgets).
  ApproxOptions approx;
  /// Accuracy of the per-split sub-counts during descent: looser is
  /// faster; sub-counts below the estimator's exact budget are exact.
  double descent_epsilon = 0.3;
  double descent_delta = 0.25;
};

/// Reusable sampling / membership machinery for a fixed (phi, D).
/// The query and database must outlive the sampler.
class AnswerSampler {
 public:
  /// Fails when the query is invalid for the database or has no free
  /// variables (sampling needs l >= 1).
  static StatusOr<std::unique_ptr<AnswerSampler>> Create(
      const Query& q, const Database& db, const SamplerOptions& opts);

  /// Draws one approximately uniform answer. Fails with kNotFound when the
  /// answer set is (believed) empty.
  StatusOr<Tuple> SampleOne();

  /// Draws `count` answers independently (with replacement).
  StatusOr<std::vector<Tuple>> Sample(int count);

  /// One-sided membership test: is `answer` in Ans(phi, D)? (False
  /// negatives with probability <= delta; never false positives.)
  bool Member(const Tuple& answer, double delta);

  /// Convenience: run the FPTRAS on this machinery.
  StatusOr<ApproxCountResult> EstimateCount(double epsilon, double delta);

 private:
  AnswerSampler(const Query& q, const Database& db,
                const SamplerOptions& opts);

  const Query& query_;
  const Database& db_;
  SamplerOptions opts_;
  std::unique_ptr<DecompositionHomOracle> hom_;
  std::unique_ptr<ColourCodingEdgeFreeOracle> oracle_;
  // Oracle forks for evaluating the two halves of a descent level
  // concurrently (created lazily, reused across samples).
  std::vector<std::unique_ptr<EdgeFreeOracle>> descent_forks_;
  // Zone-map pruning hooks: positive atoms that pin a free variable to a
  // relation column whose zone maps can refute a descent box outright
  // (see SampleOne). Empty when the database carries no zone maps.
  struct ZoneProbe {
    const ZoneMaps* zones;  // Owned by the database relation.
    int col;                // Column of the relation.
    int var;                // Free variable (< num_free) at that column.
  };
  std::vector<ZoneProbe> zone_probes_;
  double width_ = 0.0;
  Rng rng_;
};

}  // namespace cqcount

#endif  // CQCOUNT_COUNTING_SAMPLER_H_
