#include "counting/dlm_counter.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <queue>
#include <tuple>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/failpoint.h"
#include "util/math_util.h"
#include "util/random.h"

namespace cqcount {
namespace {

// Registry mirrors of the estimator's per-result counters. Fed ONCE per
// estimate (bulk adds in DlmCountEdges), never inside the probe loops:
// the sampling hot path stays byte-identical to the uninstrumented code,
// so determinism and the <2% overhead budget hold trivially.
struct DlmMetrics {
  obs::Counter& estimates = obs::MetricRegistry::Global().GetCounter(
      "dlm.estimates", "DLM edge-count estimates computed");
  obs::Counter& exact = obs::MetricRegistry::Global().GetCounter(
      "dlm.exact_results", "Estimates resolved exactly within budget");
  obs::Counter& runs = obs::MetricRegistry::Global().GetCounter(
      "dlm.runs", "Outer-median adaptive sampling runs executed");
  obs::Counter& rounds = obs::MetricRegistry::Global().GetCounter(
      "dlm.rounds", "Adaptive refinement rounds, summed over runs");
  obs::Counter& oracle_calls = obs::MetricRegistry::Global().GetCounter(
      "dlm.oracle_calls", "Edge-free oracle probes across all phases");
  obs::Counter& exact_waves = obs::MetricRegistry::Global().GetCounter(
      "dlm.exact_waves", "Exact-phase enumeration waves executed");
  obs::Counter& abandoned = obs::MetricRegistry::Global().GetCounter(
      "dlm.abandoned_waves",
      "Exact phases abandoned at a wave boundary (budget exceeded)");
  obs::Counter& early_stops = obs::MetricRegistry::Global().GetCounter(
      "dlm.early_stops",
      "Outer-median schedules terminated early by the CLT/hard-bounds rule");
  obs::Histogram& calls_per_estimate =
      obs::MetricRegistry::Global().GetHistogram(
          "dlm.calls_per_estimate", "Oracle probes per estimate (log2 buckets)");

  static DlmMetrics& Get() {
    static DlmMetrics* metrics = new DlmMetrics();
    return *metrics;
  }
};

// Eager registration at load: every metric name appears in `stats` JSON
// (schema validation) even on code paths that never touch it.
[[maybe_unused]] const DlmMetrics& kDlmMetricsInit = DlmMetrics::Get();

// A product of per-part index ranges [lo, hi).
struct Box {
  std::vector<std::pair<uint32_t, uint32_t>> ranges;

  double LogVolume() const {
    double lv = 0.0;
    for (const auto& [lo, hi] : ranges) lv += std::log2(double(hi - lo));
    return lv;
  }
  bool IsSingleton() const {
    for (const auto& [lo, hi] : ranges) {
      if (hi - lo != 1) return false;
    }
    return true;
  }
  // Index of the widest part.
  int WidestPart() const {
    int best = 0;
    uint32_t width = 0;
    for (size_t i = 0; i < ranges.size(); ++i) {
      const uint32_t w = ranges[i].second - ranges[i].first;
      if (w > width) {
        width = w;
        best = static_cast<int>(i);
      }
    }
    return best;
  }
};

PartiteSubset ToSubset(const Box& box,
                       const std::vector<uint32_t>& part_sizes) {
  PartiteSubset subset;
  subset.parts.resize(box.ranges.size());
  for (size_t i = 0; i < box.ranges.size(); ++i) {
    subset.parts[i].Assign(part_sizes[i], false);
    subset.parts[i].SetRange(box.ranges[i].first, box.ranges[i].second);
  }
  return subset;
}

// Number of sub-boxes the exact phase is pre-partitioned into. A fixed
// constant — NOT a function of the lane count — so the partition (and
// with it every count and cap decision) is identical at every thread
// count; lanes merely claim sub-boxes dynamically.
constexpr int kExactPartition = 16;

// Bounds on the median of `total` (odd) values when only the first k of
// them are known (`known_sorted`, ascending) and every missing value is
// guaranteed to lie in [0, cap]: the median is smallest when all unknowns
// sink to 0 and largest when they all rise to cap. These are HARD bounds
// (not confidence bounds): an interrupted estimate's interval provably
// contains what the uninterrupted median over all `total` runs would
// have been for the same seed.
std::pair<double, double> MedianOrderBounds(
    const std::vector<double>& known_sorted, int total, double cap) {
  const int k = static_cast<int>(known_sorted.size());
  const int unknown = total - k;
  const int mid = (total - 1) / 2;
  const double lower = mid >= unknown ? known_sorted[mid - unknown] : 0.0;
  const double upper = mid < k ? known_sorted[mid] : cap;
  return {lower, upper};
}

class Estimator {
 public:
  Estimator(const std::vector<uint32_t>& part_sizes, EdgeFreeOracle& oracle,
            const DlmOptions& opts)
      : part_sizes_(part_sizes), opts_(opts) {
    lanes_.push_back(&oracle);
    if (opts_.pool != nullptr && opts_.intra_threads > 1) {
      for (int l = 1; l < opts_.intra_threads; ++l) {
        std::unique_ptr<EdgeFreeOracle> fork = oracle.Fork();
        if (fork == nullptr) break;  // No concurrent path: stay inline.
        lanes_.push_back(fork.get());
        forks_.push_back(std::move(fork));
      }
    }
    if (lanes_.size() == 1) forks_.clear();
    parallel_.lanes = static_cast<int>(lanes_.size());
  }

  StatusOr<DlmResult> Run() {
    Box full;
    for (uint32_t size : part_sizes_) {
      if (size == 0) return Finish(0.0, /*exact=*/true, /*converged=*/true, 0);
      full.ranges.push_back({0, size});
    }
    if (Checkpoint() != GovernanceState::kRunning) {
      return GovStatus("DLM estimate");
    }
    if (IsEdgeFreeSeq(full)) {
      return Finish(0.0, true, true, 0);
    }

    // Phase 1: exact enumeration within budget, partitioned into a fixed
    // set of sub-boxes counted independently (each with a deterministic
    // count cap), so lanes can claim sub-boxes without changing the
    // arithmetic.
    uint64_t exact_count = 0;
    if (ExactPhase(full, &exact_count)) {
      return Finish(static_cast<double>(exact_count), true, true, 0);
    }
    // Interruption before any sampling run: there is no completed work to
    // assemble an anytime answer from, so surface the typed cause.
    if (GovFired()) return GovStatus("DLM exact phase");

    // Phase 2: breadth-first expansion into a frontier of non-empty boxes
    // (sequential: a priority-driven loop of ~2 * max_frontier probes,
    // dwarfed by the sampling phase it feeds).
    std::vector<Box> frontier;
    uint64_t singleton_edges = 0;
    {
      obs::Span frontier_span("dlm.frontier");
      ExpandFrontier(full, opts_.max_frontier, /*budget_guarded=*/true,
                     &frontier, &singleton_edges);
    }
    if (GovFired()) return GovStatus("DLM frontier expansion");
    if (frontier.empty()) {
      // Everything resolved into singletons after all: exact.
      return Finish(static_cast<double>(singleton_edges), true, true, 0);
    }

    // Phase 3: median over independent adaptive sampling runs. Run seeds
    // are derived sequentially up front; each run then consumes only
    // counter-derived streams, so runs may execute on any lane in any
    // order. The oracle-call cap is split evenly across runs and checked
    // at round boundaries: cap outcomes are deterministic too.
    const int runs = NumRuns();
    std::vector<uint64_t> run_seeds(runs);
    {
      // The historical per-run Rng::Split() walk, precomputed up front so
      // runs can execute on any lane in any order.
      Rng rng(opts_.seed);
      for (int r = 0; r < runs; ++r) run_seeds[r] = rng.SplitSeed();
    }
    const uint64_t spent = seq_calls_ + task_calls_;
    const uint64_t remaining =
        opts_.max_oracle_calls > spent ? opts_.max_oracle_calls - spent : 0;
    if (remaining == 0) {
      // The request-level call cap was consumed by the exact/frontier
      // phases: every run would return garbage. Typed so callers can
      // distinguish "budget too small" from real failures.
      return Status::ResourceExhausted(
          "oracle-call budget exhausted before the sampling phase; raise "
          "max_oracle_calls");
    }
    const uint64_t per_run_budget = remaining / static_cast<uint64_t>(runs);

    if (opts_.early_stop && runs > 1) {
      return EarlyStopSampling(frontier, singleton_edges, run_seeds,
                               per_run_budget);
    }
    std::vector<RunOutcome> outcomes(runs);
    // Runs may execute on pool threads; parent their spans on the
    // sampling phase explicitly (the implicit thread-local stack does not
    // cross threads).
    obs::Span sampling_span("dlm.sampling");
    const obs::SpanRef sampling_ref = sampling_span.ref();
    auto execute_run = [&](int lane, size_t r) {
      obs::Span run_span("dlm.run", sampling_ref);
      outcomes[r] =
          AdaptiveRun(frontier, singleton_edges, run_seeds[r], per_run_budget,
                      *lanes_[static_cast<size_t>(lane)],
                      /*sample_fanout=*/false);
      // Deterministic cut-point injection for governance tests: fires
      // after run r finishes (before the next run's first checkpoint).
      failpoint::ShouldFail("dlm.run_boundary");
    };
    if (lanes_.size() > 1 && runs > 1) {
      // Whole runs fan across lanes (each run sequential on its lane).
      Executor::LaneStats stats = opts_.pool->ParallelForLanes(
          static_cast<size_t>(runs), static_cast<int>(lanes_.size()),
          execute_run);
      parallel_.tasks += static_cast<uint64_t>(runs);
      parallel_.worker_tasks += stats.worker_ran;
    } else {
      // A single run (or no lanes): fan the per-round sample batches
      // instead. Identical arithmetic either way — only the partition of
      // work onto threads differs.
      for (int r = 0; r < runs; ++r) {
        obs::Span run_span("dlm.run", sampling_ref);
        outcomes[r] =
            AdaptiveRun(frontier, singleton_edges, run_seeds[r],
                        per_run_budget, *lanes_[0],
                        /*sample_fanout=*/lanes_.size() > 1);
        failpoint::ShouldFail("dlm.run_boundary");
      }
    }

    if (GovFired()) {
      return PartialFromRuns(outcomes, runs);
    }
    std::vector<double> estimates;
    estimates.reserve(runs);
    int worst_rounds = 0;
    bool converged = true;
    uint64_t run_calls = 0;
    for (const RunOutcome& outcome : outcomes) {
      estimates.push_back(outcome.estimate);
      worst_rounds = std::max(worst_rounds, outcome.rounds);
      converged = converged && outcome.converged;
      run_calls += outcome.calls;
      total_rounds_ += static_cast<uint64_t>(outcome.rounds);
    }
    runs_executed_ = static_cast<uint64_t>(runs);
    StatusOr<DlmResult> result =
        Finish(Median(estimates), false, converged, run_calls);
    result->stop_reason = converged ? StopReason::kFullSchedule
                                    : StopReason::kBudgetExhausted;
    result->refinement_rounds = worst_rounds;
    result->completed_runs = runs;
    result->total_runs = runs;
    return result;
  }

 private:
  struct RunOutcome {
    double estimate = 0.0;
    int rounds = 0;
    bool converged = false;
    uint64_t calls = 0;
    /// False when a governance checkpoint interrupted the run; its
    /// estimate is then discarded (only completed runs feed the median
    /// and the anytime interval).
    bool completed = true;
  };

  DlmResult Finish(double estimate, bool exact, bool converged,
                   uint64_t run_calls) const {
    DlmResult result;
    result.estimate = estimate;
    result.exact = exact;
    result.converged = converged;
    result.lower_bound = estimate;
    result.upper_bound = estimate;
    result.oracle_calls = seq_calls_ + task_calls_ + run_calls;
    // Callers accumulate total_rounds_ before finishing, so this is the
    // rounds actually executed across the runs that fed the estimate.
    result.rounds_executed = static_cast<int>(total_rounds_);
    result.parallel = parallel_;
    return result;
  }

  // Governance checkpoint: probes (and latches) the governor. One branch
  // when ungoverned, one relaxed load once latched.
  GovernanceState Checkpoint() const {
    return opts_.governor == nullptr ? GovernanceState::kRunning
                                     : opts_.governor->Check();
  }
  // Latched state only — never probes the clock, so completed work
  // observed before the latch stays valid.
  bool GovFired() const {
    return opts_.governor != nullptr && opts_.governor->fired();
  }
  Status GovStatus(const char* what) const {
    Status status = opts_.governor->ToStatus(what);
    assert(!status.ok());
    return status;
  }

  // Hard upper bound on any single run estimate: the Knuth weight of one
  // descent doubles at most ceil(log2 width) times per part, so a sample
  // (and with it every stratum mean, their sum plus the exact mass) is
  // bounded by the product of per-part powers of two. Clamped to a
  // finite double so anytime intervals always have finite endpoints.
  double PaddedVolume() const {
    double volume = 1.0;
    for (uint32_t size : part_sizes_) {
      uint64_t padded = 1;
      while (padded < size) padded <<= 1;
      volume *= static_cast<double>(padded);
      if (!std::isfinite(volume)) {
        return std::numeric_limits<double>::max();
      }
    }
    return volume;
  }

  // Anytime answer after an interruption: median of the k completed runs,
  // bracketed by hard order-statistic bounds on the full m-run median
  // (unknown runs pinned to [0, PaddedVolume()]). With k == 0 there is
  // nothing to report and the typed cause surfaces instead.
  StatusOr<DlmResult> PartialFromRuns(const std::vector<RunOutcome>& outcomes,
                                      int runs) {
    std::vector<double> completed;
    completed.reserve(outcomes.size());
    uint64_t run_calls = 0;
    int worst_rounds = 0;
    for (const RunOutcome& outcome : outcomes) {
      run_calls += outcome.calls;
      if (!outcome.completed) continue;
      completed.push_back(outcome.estimate);
      worst_rounds = std::max(worst_rounds, outcome.rounds);
      total_rounds_ += static_cast<uint64_t>(outcome.rounds);
    }
    runs_executed_ = completed.size();
    if (completed.empty()) {
      return GovStatus("DLM sampling phase");
    }
    const double estimate = Median(completed);
    std::sort(completed.begin(), completed.end());
    double cap = std::max(PaddedVolume(), completed.back());
    auto [lower, upper] =
        MedianOrderBounds(completed, runs, cap);
    StatusOr<DlmResult> result =
        Finish(estimate, /*exact=*/false, /*converged=*/false, run_calls);
    result->partial = true;
    result->stop_reason = opts_.governor->state() == GovernanceState::kCancelled
                              ? StopReason::kCancelled
                              : StopReason::kDeadlineExpired;
    result->lower_bound = lower;
    result->upper_bound = upper;
    result->refinement_rounds = worst_rounds;
    result->completed_runs = static_cast<int>(completed.size());
    result->total_runs = runs;
    return result;
  }

  // Early-stop rule, consulted at run boundaries when opts_.early_stop is
  // armed. A pure function of the completed run estimates (which are
  // themselves lane-count independent), so the stop index — and with it
  // the adaptive estimate and its oracle-call tally — is reproducible at
  // any thread count. Two ways to stop before the full schedule:
  //  - kHardBounds: the order-statistic bounds on the FULL m-run median
  //    (unknown runs pinned to [0, cap]) already pinch within epsilon.
  //    The remaining runs provably cannot move the answer outside the
  //    target, whatever they return.
  //  - kConfidence: the CLT interval over the k completed runs,
  //    z * s / sqrt(k) with z = sqrt(2 ln(2/delta)) (the sub-Gaussian
  //    two-sided quantile), is within epsilon of the mean. This is the
  //    statistical stop: per-run estimates concentrate so tightly that
  //    more median amplification is wasted work.
  StopReason EarlyStopReason(const std::vector<RunOutcome>& done,
                             int total_runs) const {
    const int k = static_cast<int>(done.size());
    if (k < std::max(2, opts_.min_early_stop_runs) || k >= total_runs) {
      return StopReason::kNone;
    }
    std::vector<double> estimates;
    estimates.reserve(done.size());
    MeanVarAccumulator acc;
    for (const RunOutcome& outcome : done) {
      estimates.push_back(outcome.estimate);
      acc.Add(outcome.estimate);
    }
    const double median = Median(estimates);  // Reorders; re-sort below.
    std::sort(estimates.begin(), estimates.end());
    const double cap = std::max(PaddedVolume(), estimates.back());
    auto [lower, upper] = MedianOrderBounds(estimates, total_runs, cap);
    if (upper - lower <= opts_.epsilon * std::max(median, 1.0)) {
      return StopReason::kHardBounds;
    }
    const double z = std::sqrt(2.0 * std::log(2.0 / opts_.delta));
    if (z * std::sqrt(acc.mean_variance()) <=
        opts_.epsilon * std::max(acc.mean(), 1.0)) {
      return StopReason::kConfidence;
    }
    return StopReason::kNone;
  }

  // Phase 3 under early termination: runs execute strictly in index
  // order (per-round batches still fan across lanes), and after each
  // completed run the EarlyStopReason rule decides whether the remaining
  // schedule is worth its oracle calls. The estimate on an early stop is
  // the median of the completed prefix — a full (non-partial) answer:
  // the stop rule only fires once that prefix meets (epsilon, delta).
  StatusOr<DlmResult> EarlyStopSampling(const std::vector<Box>& frontier,
                                        uint64_t singleton_edges,
                                        const std::vector<uint64_t>& run_seeds,
                                        uint64_t per_run_budget) {
    const int runs = static_cast<int>(run_seeds.size());
    obs::Span sampling_span("dlm.sampling");
    const obs::SpanRef sampling_ref = sampling_span.ref();
    std::vector<RunOutcome> outcomes;
    outcomes.reserve(run_seeds.size());
    StopReason stop = StopReason::kNone;
    for (int r = 0; r < runs; ++r) {
      {
        obs::Span run_span("dlm.run", sampling_ref);
        outcomes.push_back(AdaptiveRun(frontier, singleton_edges,
                                       run_seeds[static_cast<size_t>(r)],
                                       per_run_budget, *lanes_[0],
                                       /*sample_fanout=*/lanes_.size() > 1));
      }
      failpoint::ShouldFail("dlm.run_boundary");
      // Active checkpoint, not a passive GovFired() read: a cancellation
      // or deadline landing exactly at this boundary must latch before
      // the stop rule is consulted, so interruption is the typed first
      // cause even when the stop rule would also have fired here.
      if (!outcomes.back().completed ||
          Checkpoint() != GovernanceState::kRunning) {
        break;
      }
      stop = EarlyStopReason(outcomes, runs);
      if (stop != StopReason::kNone) break;
    }
    if (GovFired()) {
      // Interruption wins over a concurrent stop verdict: the anytime
      // partial (hard interval + typed cause) is the contract callers
      // rely on, whether or not early stop was armed.
      return PartialFromRuns(outcomes, runs);
    }
    std::vector<double> estimates;
    estimates.reserve(outcomes.size());
    int worst_rounds = 0;
    bool converged = true;
    uint64_t run_calls = 0;
    for (const RunOutcome& outcome : outcomes) {
      estimates.push_back(outcome.estimate);
      worst_rounds = std::max(worst_rounds, outcome.rounds);
      converged = converged && outcome.converged;
      run_calls += outcome.calls;
      total_rounds_ += static_cast<uint64_t>(outcome.rounds);
    }
    runs_executed_ = outcomes.size();
    StatusOr<DlmResult> result =
        Finish(Median(estimates), false, converged, run_calls);
    result->stop_reason = stop != StopReason::kNone
                              ? stop
                              : (converged ? StopReason::kFullSchedule
                                           : StopReason::kBudgetExhausted);
    result->refinement_rounds = worst_rounds;
    result->completed_runs = static_cast<int>(outcomes.size());
    result->total_runs = runs;
    return result;
  }

  bool SeqOverBudget() const { return seq_calls_ > opts_.max_oracle_calls; }

  // Sequential-phase probe on the root oracle (deterministic order).
  bool IsEdgeFreeSeq(const Box& box) {
    ++seq_calls_;
    return lanes_[0]->IsEdgeFree(ToSubset(box, part_sizes_));
  }

  static bool Probe(EdgeFreeOracle& oracle,
                    const std::vector<uint32_t>& part_sizes, const Box& box,
                    uint64_t* calls) {
    ++*calls;
    return oracle.IsEdgeFree(ToSubset(box, part_sizes));
  }

  std::pair<Box, Box> Split(const Box& box) const {
    const int d = box.WidestPart();
    const auto [lo, hi] = box.ranges[d];
    const uint32_t mid = lo + (hi - lo) / 2;
    Box left = box;
    Box right = box;
    left.ranges[d] = {lo, mid};
    right.ranges[d] = {mid, hi};
    return {std::move(left), std::move(right)};
  }

  // Breadth-first expansion of `root` (non-empty) into non-empty boxes:
  // the largest-volume box is split first, until `limit` boxes exist (or
  // everything resolved into singletons, or — when `budget_guarded` —
  // the sequential call budget ran out). Singleton edges are counted into
  // *singletons; the non-singleton frontier is appended to *boxes in a
  // deterministic (priority) order. Probes run on the root oracle.
  void ExpandFrontier(const Box& root, int limit, bool budget_guarded,
                      std::vector<Box>* boxes, uint64_t* singletons) {
    auto cmp = [](const Box& a, const Box& b) {
      return a.LogVolume() < b.LogVolume();
    };
    std::priority_queue<Box, std::vector<Box>, decltype(cmp)> queue(cmp);
    queue.push(root);
    while (!queue.empty() &&
           static_cast<int>(boxes->size()) + static_cast<int>(queue.size()) <
               limit &&
           !(budget_guarded && SeqOverBudget()) &&
           // Iteration-boundary checkpoint: on fire, the loop drains the
           // queue into a valid (coarser) frontier and the caller decides
           // via GovFired() whether to use it.
           Checkpoint() == GovernanceState::kRunning) {
      Box box = queue.top();
      queue.pop();
      if (box.IsSingleton()) {
        ++*singletons;
        continue;
      }
      auto [left, right] = Split(box);
      const bool left_nonempty = !IsEdgeFreeSeq(left);
      // The parent box is non-empty, so if the left half is empty the
      // right half cannot be (one call saved).
      const bool right_nonempty =
          !left_nonempty ? true : !IsEdgeFreeSeq(right);
      if (left_nonempty) queue.push(std::move(left));
      if (right_nonempty) queue.push(std::move(right));
    }
    while (!queue.empty()) {
      Box box = queue.top();
      queue.pop();
      if (box.IsSingleton()) {
        ++*singletons;
      } else {
        boxes->push_back(std::move(box));
      }
    }
  }

  // Phase 1. Expands `root` (non-empty) into at most kExactPartition
  // non-empty sub-boxes (sequential, a handful of probes), then counts
  // the sub-boxes exactly in WAVES: each wave lets every live task
  // enumerate a bounded chunk of edges off its own resumable DFS stack —
  // in parallel across lanes — and the abandon decision is taken at wave
  // boundaries on the (deterministic) summed counts. The partition, the
  // chunking and therefore every count, call tally and the verdict are
  // independent of the lane count; the wasted work on abandonment is
  // bounded by one wave (~budget edges), matching the sequential
  // enumeration this replaces.
  bool ExactPhase(const Box& root, uint64_t* count) {
    obs::Span phase_span("dlm.exact_phase");
    std::vector<Box> roots;
    uint64_t singletons = 0;
    ExpandFrontier(root, kExactPartition, /*budget_guarded=*/true, &roots,
                   &singletons);
    // Interrupted during partitioning: never report a partial exact count
    // as exact — fail the phase and let Run() surface the typed cause.
    if (GovFired()) return false;
    if (singletons > opts_.exact_enumeration_budget) return false;

    struct ExactTask {
      std::vector<Box> stack;  // Invariant: boxes are non-empty.
      uint64_t count = 0;
      uint64_t calls = 0;
    };
    std::vector<ExactTask> tasks(roots.size());
    for (size_t i = 0; i < roots.size(); ++i) {
      tasks[i].stack.push_back(std::move(roots[i]));
    }
    // Edges one task may enumerate per wave: sized so one wave across all
    // tasks overshoots the budget by at most ~one budget's worth.
    const uint64_t chunk =
        opts_.exact_enumeration_budget / kExactPartition + 1;

    std::vector<size_t> live;
    auto run_task = [&](int lane, size_t slot) {
      ExactTask& task = tasks[live[slot]];
      EdgeFreeOracle& oracle = *lanes_[static_cast<size_t>(lane)];
      uint64_t wave_count = 0;
      while (!task.stack.empty() && wave_count < chunk) {
        Box box = std::move(task.stack.back());
        task.stack.pop_back();
        if (box.IsSingleton()) {
          ++task.count;
          ++wave_count;
          continue;
        }
        auto [left, right] = Split(box);
        const bool left_nonempty =
            !Probe(oracle, part_sizes_, left, &task.calls);
        const bool right_nonempty =
            !left_nonempty ? true : !Probe(oracle, part_sizes_, right,
                                           &task.calls);
        if (left_nonempty) task.stack.push_back(std::move(left));
        if (right_nonempty) task.stack.push_back(std::move(right));
      }
    };

    bool within_budget = true;
    for (;;) {
      live.clear();
      for (size_t i = 0; i < tasks.size(); ++i) {
        if (!tasks[i].stack.empty()) live.push_back(i);
      }
      if (live.empty()) break;  // Every sub-box fully enumerated.
      obs::Span wave_span("dlm.wave");
      ++exact_waves_;
      if (lanes_.size() > 1 && live.size() > 1) {
        Executor::LaneStats stats = opts_.pool->ParallelForLanes(
            live.size(), static_cast<int>(lanes_.size()), run_task);
        parallel_.tasks += live.size();
        parallel_.worker_tasks += stats.worker_ran;
      } else {
        for (size_t slot = 0; slot < live.size(); ++slot) {
          run_task(0, slot);
        }
      }
      uint64_t total = singletons;
      uint64_t calls = seq_calls_;
      for (const ExactTask& task : tasks) {
        total += task.count;
        calls += task.calls;
      }
      if (total > opts_.exact_enumeration_budget ||
          calls > opts_.max_oracle_calls) {
        // Abandon between waves: both sums are deterministic, so the
        // edge-count and oracle-call (safety valve) caps stay
        // thread-count-independent.
        within_budget = false;
        ++abandoned_waves_;
        break;
      }
      // Wave-boundary checkpoint: a fired governor abandons the phase
      // (within_budget = false), never returns a partial count as exact.
      if (Checkpoint() != GovernanceState::kRunning) {
        within_budget = false;
        break;
      }
    }
    uint64_t total = singletons;
    for (const ExactTask& task : tasks) {
      total += task.count;
      task_calls_ += task.calls;
    }
    if (!within_budget || total > opts_.exact_enumeration_budget) {
      return false;
    }
    *count = total;
    return true;
  }

  // Unbiased pruned-Knuth estimate of the number of edges inside `box`
  // (which must be non-empty): descend by halving; the weight doubles only
  // when both halves are non-empty.
  double KnuthSample(Box box, Rng& rng, EdgeFreeOracle& oracle,
                     uint64_t* calls) const {
    double weight = 1.0;
    while (!box.IsSingleton()) {
      auto [left, right] = Split(box);
      const bool left_nonempty = !Probe(oracle, part_sizes_, left, calls);
      if (!left_nonempty) {
        box = std::move(right);
        continue;
      }
      const bool right_nonempty = !Probe(oracle, part_sizes_, right, calls);
      if (!right_nonempty) {
        box = std::move(left);
        continue;
      }
      weight *= 2.0;
      box = rng.Bernoulli(0.5) ? std::move(left) : std::move(right);
    }
    return weight;
  }

  // Number of independent runs for the outer median (each run's adaptive
  // 2-sigma stopping rule gives >= 3/4 per-run confidence; the median of r
  // runs fails with probability <= exp(-r/8)).
  int NumRuns() const {
    if (opts_.delta >= 0.25) return 1;
    const int runs =
        static_cast<int>(std::ceil(8.0 * std::log(1.0 / opts_.delta)));
    return std::min(runs | 1, 41);  // Odd, capped.
  }

  // One adaptive sampling run: returns (estimate, rounds, converged,
  // oracle calls). Two variance-reduction levers per round: re-sample the
  // boxes with the highest variance-of-mean contribution, and *split* the
  // worst of them (stratification beats brute sampling for the Knuth
  // estimator, whose variance is driven by box depth).
  //
  // Every Knuth descent draws from Rng(DeriveSeed(run_seed, {round,
  // stratum id, k})) and sample weights merge in job order, so the run's
  // trajectory is a pure function of (frontier, run_seed, budget) — the
  // same whether its per-round batches fan across lanes (sample_fanout),
  // the whole run sits on one lane, or everything is inline.
  RunOutcome AdaptiveRun(const std::vector<Box>& initial_frontier,
                         uint64_t singleton_edges, uint64_t run_seed,
                         uint64_t budget, EdgeFreeOracle& home,
                         bool sample_fanout) {
    struct Stratum {
      Box box;
      MeanVarAccumulator acc;
      uint32_t id = 0;  // Stable creation-order id: the RNG key.
    };
    std::vector<Stratum> strata;
    strata.reserve(initial_frontier.size());
    uint32_t next_id = 0;
    for (const Box& box : initial_frontier) {
      strata.push_back({box, {}, next_id++});
    }
    double exact_mass = static_cast<double>(singleton_edges);
    uint64_t run_calls = 0;

    auto current = [&]() {
      double estimate = exact_mass;
      double pooled_variance = 0.0;
      for (const auto& s : strata) {
        estimate += s.acc.mean();
        pooled_variance += s.acc.mean_variance();
      }
      return std::make_pair(estimate, pooled_variance);
    };

    struct SampleJob {
      size_t stratum = 0;
      uint32_t id = 0;
      int k = 0;
    };
    std::vector<SampleJob> jobs;
    std::vector<std::pair<double, uint64_t>> weights;  // (weight, calls)

    int samples_next_round = opts_.initial_samples_per_box;
    int rounds = 0;
    // An interrupted run is discarded wholesale (completed = false): a
    // half-round mean would bias the median, and discarding keeps the
    // anytime interval's order-statistic argument exact.
    auto interrupted = [&]() {
      return RunOutcome{current().first, rounds, false, run_calls,
                        /*completed=*/false};
    };
    for (; rounds < opts_.max_refinement_rounds; ++rounds) {
      // Round-boundary checkpoint: rounds are deterministic units, so an
      // interruption here never perturbs completed-round arithmetic.
      if (Checkpoint() != GovernanceState::kRunning) return interrupted();
      // Implicitly parented on the dlm.run span (same thread).
      obs::Span round_span("dlm.round");
      // Sample targets: everything in round 0, the worse half afterwards.
      // Unsampled strata (fresh splits) come first: an unsampled stratum
      // would otherwise contribute a spurious zero mean.
      std::vector<size_t> order(strata.size());
      for (size_t i = 0; i < strata.size(); ++i) order[i] = i;
      auto priority = [&](size_t i) {
        return strata[i].acc.count() == 0
                   ? std::numeric_limits<double>::infinity()
                   : strata[i].acc.mean_variance();
      };
      std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
        return priority(x) > priority(y);
      });
      const size_t targets =
          rounds == 0 ? strata.size() : (strata.size() + 1) / 2;

      // The round's sample batch as an index space, executed in fixed
      // slices with a budget check between slices: the cap (a safety
      // valve) stops work within ~one slice of the limit, and slice
      // boundaries are index-determined, so cap outcomes stay
      // thread-count-independent.
      jobs.clear();
      for (size_t idx = 0; idx < targets; ++idx) {
        const size_t s = order[idx];
        for (int k = 0; k < samples_next_round; ++k) {
          jobs.push_back({s, strata[s].id, k});
        }
      }
      constexpr size_t kJobSlice = 256;
      bool over_budget = false;
      for (size_t begin = 0; begin < jobs.size() && !over_budget;
           begin += kJobSlice) {
        const size_t end = std::min(jobs.size(), begin + kJobSlice);
        weights.assign(end - begin, {0.0, 0});
        auto run_job = [&](int lane, size_t offset) {
          const SampleJob& job = jobs[begin + offset];
          Rng rng(DeriveSeed(run_seed, {static_cast<uint64_t>(rounds),
                                        static_cast<uint64_t>(job.id),
                                        static_cast<uint64_t>(job.k)}));
          uint64_t calls = 0;
          const double w = KnuthSample(strata[job.stratum].box, rng,
                                       *lanes_[static_cast<size_t>(lane)],
                                       &calls);
          weights[offset] = {w, calls};
        };
        if (sample_fanout && end - begin > 1) {
          Executor::LaneStats stats = opts_.pool->ParallelForLanes(
              end - begin, static_cast<int>(lanes_.size()), run_job);
          parallel_.tasks += end - begin;
          parallel_.worker_tasks += stats.worker_ran;
        } else {
          // Home lane: `home` is lanes_[l] for run-level fanout; map back
          // to its index so run_job stays lane-agnostic.
          const int home_lane = HomeLane(home);
          for (size_t offset = 0; offset < end - begin; ++offset) {
            run_job(home_lane, offset);
          }
        }
        // Merge in job order: accumulator arithmetic is order-sensitive,
        // so the order must not depend on scheduling.
        for (size_t offset = 0; offset < end - begin; ++offset) {
          strata[jobs[begin + offset].stratum].acc.Add(
              weights[offset].first);
          run_calls += weights[offset].second;
        }
        over_budget = run_calls > budget;
        // Slice-boundary checkpoint: slices are index-determined, so the
        // set of merged samples at an interruption is deterministic under
        // an injected clock (and the run is discarded regardless).
        if (Checkpoint() != GovernanceState::kRunning) return interrupted();
      }
      samples_next_round += samples_next_round / 2 + 1;

      auto [estimate, pooled_variance] = current();
      const double half_width = 2.0 * std::sqrt(pooled_variance);
      if (!over_budget &&
          half_width <= opts_.epsilon * std::max(estimate, 1.0)) {
        return {estimate, rounds + 1, true, run_calls, true};
      }
      if (over_budget || run_calls > budget) break;

      // Stratify: split the worst boxes (fresh accumulators for the
      // non-empty halves; singleton halves become exact mass). Splitting
      // cuts Knuth variance roughly in half per level at a cost of ~2
      // oracle calls, which beats extra sampling until boxes are small.
      if (!opts_.enable_stratified_splits) continue;
      const size_t splits = std::max<size_t>(1, strata.size() / 4);
      std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
        return strata[x].acc.mean_variance() >
               strata[y].acc.mean_variance();
      });
      std::vector<Stratum> added;
      for (size_t idx = 0; idx < splits && idx < order.size(); ++idx) {
        Stratum& s = strata[order[idx]];
        if (s.box.IsSingleton() || run_calls > budget) continue;
        auto [left, right] = Split(s.box);
        const bool left_nonempty =
            !Probe(home, part_sizes_, left, &run_calls);
        const bool right_nonempty =
            !left_nonempty ? true
                           : !Probe(home, part_sizes_, right, &run_calls);
        std::vector<Box> halves;
        if (left_nonempty) halves.push_back(std::move(left));
        if (right_nonempty) halves.push_back(std::move(right));
        bool first = true;
        for (Box& half : halves) {
          if (half.IsSingleton()) {
            exact_mass += 1.0;
            continue;
          }
          if (first) {
            s.box = std::move(half);
            s.acc = MeanVarAccumulator();
            s.id = next_id++;
            first = false;
          } else {
            added.push_back({std::move(half), {}, next_id++});
          }
        }
        if (first) {
          // Both halves were singletons; retire the stratum.
          s.box.ranges.assign(1, {0, 1});
          s.acc = MeanVarAccumulator();
          s.acc.Add(0.0);  // Contributes 0 with 0 variance.
        }
      }
      for (Stratum& s : added) strata.push_back(std::move(s));
    }
    auto [estimate, pooled_variance] = current();
    (void)pooled_variance;
    return {estimate, rounds, false, run_calls, true};
  }

  int HomeLane(const EdgeFreeOracle& home) const {
    for (size_t l = 0; l < lanes_.size(); ++l) {
      if (lanes_[l] == &home) return static_cast<int>(l);
    }
    return 0;
  }

  const std::vector<uint32_t>& part_sizes_;
  const DlmOptions& opts_;
  std::vector<EdgeFreeOracle*> lanes_;  // [0] = the root oracle.
  std::vector<std::unique_ptr<EdgeFreeOracle>> forks_;
  uint64_t seq_calls_ = 0;   // Sequential-phase probes (root oracle).
  uint64_t task_calls_ = 0;  // Exact-phase task probes (summed in order).
  ParallelStats parallel_;

 public:
  // Per-estimate accounting, read once by DlmCountEdges for the bulk
  // registry adds. Plain members (not registry writes) so the estimator's
  // deterministic phases stay untouched.
  uint64_t exact_waves_ = 0;
  uint64_t abandoned_waves_ = 0;
  uint64_t runs_executed_ = 0;
  uint64_t total_rounds_ = 0;
};

}  // namespace

StatusOr<DlmResult> DlmCountEdges(const std::vector<uint32_t>& part_sizes,
                                  EdgeFreeOracle& oracle,
                                  const DlmOptions& opts) {
  if (part_sizes.empty()) {
    return Status::InvalidArgument("DlmCountEdges requires l >= 1 parts");
  }
  if (opts.epsilon <= 0.0 || opts.epsilon >= 1.0 || opts.delta <= 0.0 ||
      opts.delta >= 1.0) {
    return Status::InvalidArgument("epsilon and delta must lie in (0, 1)");
  }
  Estimator estimator(part_sizes, oracle, opts);
  StatusOr<DlmResult> result = estimator.Run();
  if (result.ok()) {
    // One bulk add per estimate: the probe loops above never touch the
    // registry.
    DlmMetrics& metrics = DlmMetrics::Get();
    metrics.estimates.Increment();
    if (result->exact) metrics.exact.Increment();
    metrics.runs.Add(estimator.runs_executed_);
    metrics.rounds.Add(estimator.total_rounds_);
    metrics.oracle_calls.Add(result->oracle_calls);
    metrics.exact_waves.Add(estimator.exact_waves_);
    metrics.abandoned.Add(estimator.abandoned_waves_);
    if (result->stop_reason == StopReason::kConfidence ||
        result->stop_reason == StopReason::kHardBounds) {
      metrics.early_stops.Increment();
    }
    metrics.calls_per_estimate.Observe(result->oracle_calls);
  }
  return result;
}

}  // namespace cqcount
