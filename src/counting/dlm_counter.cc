#include "counting/dlm_counter.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <queue>
#include <tuple>

#include "util/math_util.h"
#include "util/random.h"

namespace cqcount {
namespace {

// A product of per-part index ranges [lo, hi).
struct Box {
  std::vector<std::pair<uint32_t, uint32_t>> ranges;

  double LogVolume() const {
    double lv = 0.0;
    for (const auto& [lo, hi] : ranges) lv += std::log2(double(hi - lo));
    return lv;
  }
  bool IsSingleton() const {
    for (const auto& [lo, hi] : ranges) {
      if (hi - lo != 1) return false;
    }
    return true;
  }
  // Index of the widest part.
  int WidestPart() const {
    int best = 0;
    uint32_t width = 0;
    for (size_t i = 0; i < ranges.size(); ++i) {
      const uint32_t w = ranges[i].second - ranges[i].first;
      if (w > width) {
        width = w;
        best = static_cast<int>(i);
      }
    }
    return best;
  }
};

PartiteSubset ToSubset(const Box& box,
                       const std::vector<uint32_t>& part_sizes) {
  PartiteSubset subset;
  subset.parts.resize(box.ranges.size());
  for (size_t i = 0; i < box.ranges.size(); ++i) {
    subset.parts[i].Assign(part_sizes[i], false);
    subset.parts[i].SetRange(box.ranges[i].first, box.ranges[i].second);
  }
  return subset;
}

class Estimator {
 public:
  Estimator(const std::vector<uint32_t>& part_sizes, EdgeFreeOracle& oracle,
            const DlmOptions& opts)
      : part_sizes_(part_sizes),
        oracle_(oracle),
        opts_(opts),
        calls_base_(oracle.num_calls()) {}

  StatusOr<DlmResult> Run() {
    Box full;
    for (uint32_t size : part_sizes_) {
      if (size == 0) return DlmResult{0.0, true, true, 0, 0};
      full.ranges.push_back({0, size});
    }
    if (IsEdgeFree(full)) {
      return DlmResult{0.0, true, true, oracle_.num_calls() - calls_base_, 0};
    }

    // Phase 1: exact enumeration within budget.
    uint64_t exact_count = 0;
    if (EnumerateExact(full, &exact_count)) {
      DlmResult result;
      result.estimate = static_cast<double>(exact_count);
      result.exact = true;
      result.oracle_calls = Calls();
      return result;
    }

    // Phase 2: breadth-first expansion into a frontier of non-empty boxes.
    auto cmp = [](const Box& a, const Box& b) {
      return a.LogVolume() < b.LogVolume();
    };
    std::priority_queue<Box, std::vector<Box>, decltype(cmp)> queue(cmp);
    queue.push(full);
    std::vector<Box> frontier;
    uint64_t singleton_edges = 0;
    while (!queue.empty() &&
           static_cast<int>(frontier.size()) + static_cast<int>(queue.size()) <
               opts_.max_frontier &&
           !OverBudget()) {
      Box box = queue.top();
      queue.pop();
      if (box.IsSingleton()) {
        ++singleton_edges;
        continue;
      }
      auto [left, right] = Split(box);
      const bool left_nonempty = !IsEdgeFree(left);
      // The parent box is non-empty, so if the left half is empty the
      // right half cannot be (one call saved).
      const bool right_nonempty =
          !left_nonempty ? true : !IsEdgeFree(right);
      if (left_nonempty) queue.push(std::move(left));
      if (right_nonempty) queue.push(std::move(right));
    }
    while (!queue.empty()) {
      Box box = queue.top();
      queue.pop();
      if (box.IsSingleton()) {
        ++singleton_edges;
      } else {
        frontier.push_back(std::move(box));
      }
    }
    if (frontier.empty()) {
      // Everything resolved into singletons after all: exact.
      DlmResult result;
      result.estimate = static_cast<double>(singleton_edges);
      result.exact = true;
      result.oracle_calls = Calls();
      return result;
    }

    // Phase 3: median over independent adaptive sampling runs.
    const int runs = NumRuns();
    std::vector<double> estimates;
    int worst_rounds = 0;
    bool converged = true;
    Rng rng(opts_.seed);
    for (int run = 0; run < runs; ++run) {
      Rng run_rng = rng.Split();
      auto [estimate, rounds, run_converged] =
          AdaptiveRun(frontier, singleton_edges, run_rng);
      estimates.push_back(estimate);
      worst_rounds = std::max(worst_rounds, rounds);
      converged = converged && run_converged;
      if (OverBudget()) {
        converged = false;
        break;
      }
    }
    DlmResult result;
    result.estimate = Median(estimates);
    result.exact = false;
    result.converged = converged;
    result.oracle_calls = Calls();
    result.refinement_rounds = worst_rounds;
    return result;
  }

 private:
  uint64_t Calls() const { return oracle_.num_calls() - calls_base_; }
  bool OverBudget() const { return Calls() > opts_.max_oracle_calls; }

  bool IsEdgeFree(const Box& box) {
    return oracle_.IsEdgeFree(ToSubset(box, part_sizes_));
  }

  std::pair<Box, Box> Split(const Box& box) const {
    const int d = box.WidestPart();
    const auto [lo, hi] = box.ranges[d];
    const uint32_t mid = lo + (hi - lo) / 2;
    Box left = box;
    Box right = box;
    left.ranges[d] = {lo, mid};
    right.ranges[d] = {mid, hi};
    return {std::move(left), std::move(right)};
  }

  // Depth-first full bisection; returns false (abandoning the attempt) as
  // soon as the running count exceeds the exact budget.
  bool EnumerateExact(const Box& root, uint64_t* count) {
    std::vector<Box> stack = {root};  // Invariant: boxes are non-empty.
    while (!stack.empty()) {
      if (OverBudget()) return false;
      Box box = std::move(stack.back());
      stack.pop_back();
      if (box.IsSingleton()) {
        if (++(*count) > opts_.exact_enumeration_budget) return false;
        continue;
      }
      auto [left, right] = Split(box);
      const bool left_nonempty = !IsEdgeFree(left);
      const bool right_nonempty =
          !left_nonempty ? true : !IsEdgeFree(right);
      if (left_nonempty) stack.push_back(std::move(left));
      if (right_nonempty) stack.push_back(std::move(right));
    }
    return true;
  }

  // Unbiased pruned-Knuth estimate of the number of edges inside `box`
  // (which must be non-empty): descend by halving; the weight doubles only
  // when both halves are non-empty.
  double KnuthSample(Box box, Rng& rng) {
    double weight = 1.0;
    while (!box.IsSingleton()) {
      auto [left, right] = Split(box);
      const bool left_nonempty = !IsEdgeFree(left);
      if (!left_nonempty) {
        box = std::move(right);
        continue;
      }
      const bool right_nonempty = !IsEdgeFree(right);
      if (!right_nonempty) {
        box = std::move(left);
        continue;
      }
      weight *= 2.0;
      box = rng.Bernoulli(0.5) ? std::move(left) : std::move(right);
    }
    return weight;
  }

  // Number of independent runs for the outer median (each run's adaptive
  // 2-sigma stopping rule gives >= 3/4 per-run confidence; the median of r
  // runs fails with probability <= exp(-r/8)).
  int NumRuns() const {
    if (opts_.delta >= 0.25) return 1;
    const int runs =
        static_cast<int>(std::ceil(8.0 * std::log(1.0 / opts_.delta)));
    return std::min(runs | 1, 41);  // Odd, capped.
  }

  // One adaptive sampling run: returns (estimate, rounds, converged).
  // Two variance-reduction levers per round: re-sample the boxes with the
  // highest variance-of-mean contribution, and *split* the worst of them
  // (stratification beats brute sampling for the Knuth estimator, whose
  // variance is driven by box depth).
  std::tuple<double, int, bool> AdaptiveRun(
      const std::vector<Box>& initial_frontier, uint64_t singleton_edges,
      Rng& rng) {
    struct Stratum {
      Box box;
      MeanVarAccumulator acc;
    };
    std::vector<Stratum> strata;
    strata.reserve(initial_frontier.size());
    for (const Box& box : initial_frontier) strata.push_back({box, {}});
    double exact_mass = static_cast<double>(singleton_edges);

    auto current = [&]() {
      double estimate = exact_mass;
      double pooled_variance = 0.0;
      for (const auto& s : strata) {
        estimate += s.acc.mean();
        pooled_variance += s.acc.mean_variance();
      }
      return std::make_pair(estimate, pooled_variance);
    };

    int samples_next_round = opts_.initial_samples_per_box;
    int rounds = 0;
    for (; rounds < opts_.max_refinement_rounds; ++rounds) {
      // Sample targets: everything in round 0, the worse half afterwards.
      // Unsampled strata (fresh splits) come first: an unsampled stratum
      // would otherwise contribute a spurious zero mean.
      std::vector<size_t> order(strata.size());
      for (size_t i = 0; i < strata.size(); ++i) order[i] = i;
      auto priority = [&](size_t i) {
        return strata[i].acc.count() == 0
                   ? std::numeric_limits<double>::infinity()
                   : strata[i].acc.mean_variance();
      };
      std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
        return priority(x) > priority(y);
      });
      const size_t targets =
          rounds == 0 ? strata.size() : (strata.size() + 1) / 2;
      for (size_t idx = 0; idx < targets; ++idx) {
        Stratum& s = strata[order[idx]];
        for (int k = 0; k < samples_next_round; ++k) {
          if (OverBudget()) break;
          s.acc.Add(KnuthSample(s.box, rng));
        }
      }
      samples_next_round += samples_next_round / 2 + 1;

      auto [estimate, pooled_variance] = current();
      const double half_width = 2.0 * std::sqrt(pooled_variance);
      if (half_width <= opts_.epsilon * std::max(estimate, 1.0)) {
        return {estimate, rounds + 1, true};
      }
      if (OverBudget()) break;

      // Stratify: split the worst boxes (fresh accumulators for the
      // non-empty halves; singleton halves become exact mass). Splitting
      // cuts Knuth variance roughly in half per level at a cost of ~2
      // oracle calls, which beats extra sampling until boxes are small.
      if (!opts_.enable_stratified_splits) continue;
      const size_t splits = std::max<size_t>(1, strata.size() / 4);
      std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
        return strata[x].acc.mean_variance() >
               strata[y].acc.mean_variance();
      });
      std::vector<Stratum> added;
      for (size_t idx = 0; idx < splits && idx < order.size(); ++idx) {
        Stratum& s = strata[order[idx]];
        if (s.box.IsSingleton() || OverBudget()) continue;
        auto [left, right] = Split(s.box);
        const bool left_nonempty = !IsEdgeFree(left);
        const bool right_nonempty =
            !left_nonempty ? true : !IsEdgeFree(right);
        std::vector<Box> halves;
        if (left_nonempty) halves.push_back(std::move(left));
        if (right_nonempty) halves.push_back(std::move(right));
        bool first = true;
        for (Box& half : halves) {
          if (half.IsSingleton()) {
            exact_mass += 1.0;
            continue;
          }
          if (first) {
            s.box = std::move(half);
            s.acc = MeanVarAccumulator();
            first = false;
          } else {
            added.push_back({std::move(half), {}});
          }
        }
        if (first) {
          // Both halves were singletons; retire the stratum.
          s.box.ranges.assign(1, {0, 1});
          s.acc = MeanVarAccumulator();
          s.acc.Add(0.0);  // Contributes 0 with 0 variance.
        }
      }
      for (Stratum& s : added) strata.push_back(std::move(s));
    }
    auto [estimate, pooled_variance] = current();
    (void)pooled_variance;
    return {estimate, rounds, false};
  }

  const std::vector<uint32_t>& part_sizes_;
  EdgeFreeOracle& oracle_;
  const DlmOptions& opts_;
  uint64_t calls_base_ = 0;
};

}  // namespace

StatusOr<DlmResult> DlmCountEdges(const std::vector<uint32_t>& part_sizes,
                                  EdgeFreeOracle& oracle,
                                  const DlmOptions& opts) {
  if (part_sizes.empty()) {
    return Status::InvalidArgument("DlmCountEdges requires l >= 1 parts");
  }
  if (opts.epsilon <= 0.0 || opts.epsilon >= 1.0 || opts.delta <= 0.0 ||
      opts.delta >= 1.0) {
    return Status::InvalidArgument("epsilon and delta must lie in (0, 1)");
  }
  Estimator estimator(part_sizes, oracle, opts);
  return estimator.Run();
}

}  // namespace cqcount
