// FPTRAS front end for #ECQ / #DCQ (Theorems 5 and 13).
//
// Pipeline (Section 3 + Section 4 of the paper):
//   answers of (phi, D)
//     = hyperedges of H(phi, D)              (Observation 25)
//     ~ DLM edge estimation                   (Theorem 17 interface)
//     -> EdgeFree oracle via colour coding    (Lemmas 30 and 22)
//     -> Hom oracle via tree-decomposition DP (Theorem 31 engine; the same
//        engine over an fhw-optimised decomposition serves Theorem 13).
#ifndef CQCOUNT_COUNTING_FPTRAS_H_
#define CQCOUNT_COUNTING_FPTRAS_H_

#include <cstdint>

#include "counting/dlm_counter.h"
#include "decomposition/width_measures.h"
#include "query/query.h"
#include "relational/structure.h"
#include "util/estimate_outcome.h"
#include "util/executor.h"
#include "util/status.h"

namespace cqcount {

/// Options for ApproxCountAnswers.
struct ApproxOptions {
  /// Target relative error (epsilon of the (epsilon, delta) guarantee).
  double epsilon = 0.1;
  /// Target failure probability.
  double delta = 0.1;
  /// Seed controlling all randomness (colourings, sampling).
  uint64_t seed = 0xC0FFEEULL;
  /// Decomposition objective: kTreewidth for the bounded-arity Theorem 5
  /// regime, kFractionalHypertreewidth for the unbounded-arity Theorem 13
  /// regime (DESIGN.md section 4.2).
  WidthObjective objective = WidthObjective::kTreewidth;
  /// Exact-width search is used for hypergraphs up to this many variables.
  int exact_decomposition_limit = 14;
  /// Per-EdgeFree-call failure probability for the colour-coding layer.
  /// 0 = automatic (delta split over the estimator's oracle-call budget,
  /// the paper's union bound). Benches use a fixed small value to trade a
  /// negligible extra failure mass for far fewer colouring trials.
  double per_call_failure_override = 0.0;
  /// Estimator tuning (its epsilon/delta/seed fields are overridden).
  DlmOptions dlm;
  /// Precomputed decomposition of H(phi): when non-null the pipeline skips
  /// its own ComputeDecomposition call (the engine's warm plan-cache path).
  /// Must be valid for the query's hypergraph and outlive the call.
  const FWidthResult* precomputed_decomposition = nullptr;
  /// Worker pool for intra-query parallelism (not owned; null = inline).
  /// Fans the DLM estimation — sampling runs, exact-phase sub-boxes and
  /// colouring trials — across `intra_threads` lanes, each driving its
  /// own fork of the oracle stack. Estimates are bit-identical at every
  /// (pool, intra_threads) configuration; see the determinism note in
  /// dlm_counter.h and README "Parallel estimation & determinism model"
  /// (seed tree: base seed -> component -> run -> box/stratum -> sample,
  /// with colourings keyed by (seed, subset, trial)).
  Executor* pool = nullptr;
  int intra_threads = 1;
  /// Cooperative governance (not owned; null = ungoverned). Threaded into
  /// the DLM estimator and the colour-coding oracle; on expiry the
  /// pipeline yields the estimator's anytime answer (partial + interval)
  /// or its typed CANCELLED/DEADLINE_EXCEEDED status.
  const ResourceGovernor* governor = nullptr;
};

/// Result of an approximate answer count (estimate/exact/converged from
/// the shared EstimateOutcome contract).
struct ApproxCountResult : EstimateOutcome {
  /// EdgeFree oracle calls made by the estimator (deterministic: the
  /// DLM layer accounts calls per deterministic work unit).
  uint64_t edgefree_calls = 0;
  /// Hom queries issued by the colour-coding layer. A WORK counter, not
  /// part of the determinism contract: with intra-query lanes, the
  /// parallel trial loop's early exit means the number of trials
  /// actually evaluated (never the verdict) can vary with scheduling.
  uint64_t hom_queries = 0;
  /// Colouring trials per EdgeFree call (the 4^{|Delta|} log factor).
  uint64_t colouring_trials_per_call = 0;
  /// Width of the decomposition the Hom oracle ran on.
  double width = 0.0;
  /// Trial decisions served through the prepare/evaluate DP split.
  uint64_t dp_prepared_decides = 0;
  /// Rows in the solver's per-bag unrestricted join cache (built once,
  /// shared by every EdgeFree call of this count).
  uint64_t dp_cached_bag_rows = 0;
  /// False when the cache cap forced decisions onto the monolithic DP.
  bool dp_prepared_path = true;
  /// Outer-median runs completed / scheduled (differ only on partial
  /// results; see DlmResult).
  int completed_runs = 0;
  int total_runs = 0;
  /// Intra-query parallelism observability (lanes, tasks spawned, tasks
  /// run by pool workers).
  ParallelStats parallel;
};

/// (epsilon, delta)-approximates |Ans(phi, D)| for an ECQ (Theorem 5 with
/// the default treewidth objective; Theorem 13 regime with
/// kFractionalHypertreewidth). The guarantee is meaningful when the
/// query's hypergraph has bounded width; the algorithm itself is correct
/// for every input (only its running time degrades).
StatusOr<ApproxCountResult> ApproxCountAnswers(const Query& q,
                                               const Database& db,
                                               const ApproxOptions& opts);

}  // namespace cqcount

#endif  // CQCOUNT_COUNTING_FPTRAS_H_
