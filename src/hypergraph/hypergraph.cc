#include "hypergraph/hypergraph.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <sstream>

namespace cqcount {

Hypergraph::Hypergraph(int num_vertices) { EnsureVertex(num_vertices - 1); }

Vertex Hypergraph::EnsureVertex(Vertex v) {
  if (v >= num_vertices_) {
    num_vertices_ = v + 1;
    incidence_.resize(num_vertices_);
  }
  return v;
}

int Hypergraph::AddEdge(std::vector<Vertex> vertices) {
  std::sort(vertices.begin(), vertices.end());
  vertices.erase(std::unique(vertices.begin(), vertices.end()),
                 vertices.end());
  if (vertices.empty()) return -1;
  assert(vertices.front() >= 0);
  EnsureVertex(vertices.back());
  for (const auto& existing : edges_) {
    if (existing == vertices) return -1;
  }
  const int index = static_cast<int>(edges_.size());
  for (Vertex v : vertices) incidence_[v].push_back(index);
  edges_.push_back(std::move(vertices));
  return index;
}

int Hypergraph::Arity() const {
  size_t arity = 0;
  for (const auto& e : edges_) arity = std::max(arity, e.size());
  return static_cast<int>(arity);
}

bool Hypergraph::HasNoIsolatedVertices() const {
  for (Vertex v = 0; v < num_vertices_; ++v) {
    if (incidence_[v].empty()) return false;
  }
  return true;
}

Hypergraph Hypergraph::Induced(const std::vector<Vertex>& x) const {
  Hypergraph result(static_cast<int>(x.size()));
  std::vector<int> position(num_vertices_, -1);
  for (size_t i = 0; i < x.size(); ++i) {
    assert(x[i] >= 0 && x[i] < num_vertices_);
    assert(position[x[i]] == -1 && "duplicate vertex in induced set");
    position[x[i]] = static_cast<int>(i);
  }
  for (const auto& e : edges_) {
    std::vector<Vertex> restricted;
    for (Vertex v : e) {
      if (position[v] >= 0) restricted.push_back(position[v]);
    }
    if (!restricted.empty()) result.AddEdge(std::move(restricted));
  }
  return result;
}

bool Hypergraph::IsConnected() const {
  return ConnectedComponents().size() <= 1;
}

std::vector<std::vector<Vertex>> Hypergraph::ConnectedComponents() const {
  std::vector<int> component(num_vertices_, -1);
  std::vector<std::vector<Vertex>> components;
  std::vector<Vertex> stack;
  for (Vertex start = 0; start < num_vertices_; ++start) {
    if (component[start] >= 0) continue;
    const int id = static_cast<int>(components.size());
    components.emplace_back();
    stack.push_back(start);
    component[start] = id;
    while (!stack.empty()) {
      Vertex v = stack.back();
      stack.pop_back();
      components[id].push_back(v);
      for (int e : incidence_[v]) {
        for (Vertex w : edges_[e]) {
          if (component[w] < 0) {
            component[w] = id;
            stack.push_back(w);
          }
        }
      }
    }
    std::sort(components[id].begin(), components[id].end());
  }
  return components;
}

std::string Hypergraph::ToString() const {
  std::ostringstream out;
  out << "Hypergraph(n=" << num_vertices_ << ", edges={";
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (i > 0) out << ", ";
    out << "{";
    for (size_t j = 0; j < edges_[i].size(); ++j) {
      if (j > 0) out << ",";
      out << edges_[i][j];
    }
    out << "}";
  }
  out << "})";
  return out.str();
}

}  // namespace cqcount
