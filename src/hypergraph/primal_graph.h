// Primal (Gaifman) graph of a hypergraph.
//
// Two vertices are adjacent iff they share a hyperedge. Treewidth of a
// hypergraph (Definition 4) equals the treewidth of its primal graph, so
// the elimination-order machinery operates on this type.
#ifndef CQCOUNT_HYPERGRAPH_PRIMAL_GRAPH_H_
#define CQCOUNT_HYPERGRAPH_PRIMAL_GRAPH_H_

#include <vector>

#include "hypergraph/hypergraph.h"

namespace cqcount {

/// Simple undirected graph with dense vertex ids and adjacency matrices.
class PrimalGraph {
 public:
  PrimalGraph() = default;
  /// Creates an edgeless graph on `num_vertices` vertices.
  explicit PrimalGraph(int num_vertices);
  /// Builds the Gaifman graph of `h`.
  explicit PrimalGraph(const Hypergraph& h);

  int num_vertices() const { return num_vertices_; }

  /// Adds the undirected edge {u, v} (no-op if present or u == v).
  void AddEdge(Vertex u, Vertex v);

  bool HasEdge(Vertex u, Vertex v) const { return adj_[u][v]; }

  /// Sorted neighbour list of `v`.
  std::vector<Vertex> Neighbours(Vertex v) const;

  /// Degree of `v`.
  int Degree(Vertex v) const { return degree_[v]; }

  /// Number of fill edges created by eliminating `v` right now (the number
  /// of non-adjacent neighbour pairs).
  int FillIn(Vertex v) const;

  /// Connects all neighbours of `v` pairwise and removes `v` from the graph
  /// (elimination step). Returns the bag {v} + former neighbours.
  std::vector<Vertex> Eliminate(Vertex v);

  /// True if `v` was already eliminated.
  bool IsEliminated(Vertex v) const { return eliminated_[v]; }

 private:
  int num_vertices_ = 0;
  std::vector<std::vector<bool>> adj_;
  std::vector<int> degree_;
  std::vector<bool> eliminated_;
};

}  // namespace cqcount

#endif  // CQCOUNT_HYPERGRAPH_PRIMAL_GRAPH_H_
