// Hypergraphs (Section 1.2 of the paper).
//
// A hypergraph H has vertices V(H) = {0, .., n-1} and a set of non-empty
// hyperedges E(H) over V(H). Query hypergraphs H(phi) (Definition 3) and
// structure hypergraphs H(A) are built on top of this type.
#ifndef CQCOUNT_HYPERGRAPH_HYPERGRAPH_H_
#define CQCOUNT_HYPERGRAPH_HYPERGRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cqcount {

/// Vertex identifier within a hypergraph (dense, 0-based).
using Vertex = int;

/// A finite hypergraph with dense vertex ids.
///
/// Hyperedges are stored as sorted, duplicate-free vertex lists; duplicate
/// hyperedges are kept out so that E(H) is a set, matching the paper.
class Hypergraph {
 public:
  Hypergraph() = default;
  /// Creates a hypergraph with `num_vertices` isolated vertices.
  explicit Hypergraph(int num_vertices);

  /// Adds vertices so that `v` is valid; returns `v`.
  Vertex EnsureVertex(Vertex v);

  /// Adds a hyperedge (vertices are sorted and deduplicated). Empty edges
  /// and duplicates of existing edges are ignored. Returns the edge index,
  /// or -1 if the edge was ignored.
  int AddEdge(std::vector<Vertex> vertices);

  int num_vertices() const { return num_vertices_; }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  /// The (sorted) vertex list of edge `e`.
  const std::vector<Vertex>& edge(int e) const { return edges_[e]; }
  const std::vector<std::vector<Vertex>>& edges() const { return edges_; }

  /// Indices of edges containing `v`.
  const std::vector<int>& incident_edges(Vertex v) const {
    return incidence_[v];
  }

  /// Maximum hyperedge cardinality ("arity"); 0 when edgeless.
  int Arity() const;

  /// True if every vertex lies in at least one hyperedge.
  bool HasNoIsolatedVertices() const;

  /// The induced hypergraph H[X] (Definition 39): vertex set X (re-indexed
  /// densely in the order given), edges {e cap X : e in E(H)} \ {empty},
  /// deduplicated. `X` must contain valid distinct vertices.
  Hypergraph Induced(const std::vector<Vertex>& x) const;

  /// True if the hypergraph is connected (isolated vertices count as
  /// their own components). Edgeless single-vertex graphs are connected.
  bool IsConnected() const;

  /// Connected components as vertex lists (each sorted).
  std::vector<std::vector<Vertex>> ConnectedComponents() const;

  /// Human-readable rendering for diagnostics.
  std::string ToString() const;

  bool operator==(const Hypergraph& other) const = default;

 private:
  int num_vertices_ = 0;
  std::vector<std::vector<Vertex>> edges_;
  std::vector<std::vector<int>> incidence_;
};

}  // namespace cqcount

#endif  // CQCOUNT_HYPERGRAPH_HYPERGRAPH_H_
