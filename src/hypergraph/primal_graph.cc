#include "hypergraph/primal_graph.h"

#include <algorithm>
#include <cassert>

namespace cqcount {

PrimalGraph::PrimalGraph(int num_vertices)
    : num_vertices_(num_vertices),
      adj_(num_vertices, std::vector<bool>(num_vertices, false)),
      degree_(num_vertices, 0),
      eliminated_(num_vertices, false) {}

PrimalGraph::PrimalGraph(const Hypergraph& h)
    : PrimalGraph(h.num_vertices()) {
  for (const auto& e : h.edges()) {
    for (size_t i = 0; i < e.size(); ++i) {
      for (size_t j = i + 1; j < e.size(); ++j) {
        AddEdge(e[i], e[j]);
      }
    }
  }
}

void PrimalGraph::AddEdge(Vertex u, Vertex v) {
  assert(u >= 0 && u < num_vertices_ && v >= 0 && v < num_vertices_);
  if (u == v || adj_[u][v]) return;
  adj_[u][v] = adj_[v][u] = true;
  ++degree_[u];
  ++degree_[v];
}

std::vector<Vertex> PrimalGraph::Neighbours(Vertex v) const {
  std::vector<Vertex> result;
  result.reserve(degree_[v]);
  for (Vertex w = 0; w < num_vertices_; ++w) {
    if (adj_[v][w]) result.push_back(w);
  }
  return result;
}

int PrimalGraph::FillIn(Vertex v) const {
  const std::vector<Vertex> nbrs = Neighbours(v);
  int fill = 0;
  for (size_t i = 0; i < nbrs.size(); ++i) {
    for (size_t j = i + 1; j < nbrs.size(); ++j) {
      if (!adj_[nbrs[i]][nbrs[j]]) ++fill;
    }
  }
  return fill;
}

std::vector<Vertex> PrimalGraph::Eliminate(Vertex v) {
  assert(!eliminated_[v]);
  const std::vector<Vertex> nbrs = Neighbours(v);
  for (size_t i = 0; i < nbrs.size(); ++i) {
    for (size_t j = i + 1; j < nbrs.size(); ++j) {
      AddEdge(nbrs[i], nbrs[j]);
    }
  }
  // Remove v.
  for (Vertex w : nbrs) {
    adj_[v][w] = adj_[w][v] = false;
    --degree_[w];
  }
  degree_[v] = 0;
  eliminated_[v] = true;

  std::vector<Vertex> bag = nbrs;
  bag.push_back(v);
  std::sort(bag.begin(), bag.end());
  return bag;
}

}  // namespace cqcount
