// Hypertree decompositions with explicit guards (Definition 37).
//
// A hypertree decomposition (T, B, Gamma) extends a tree decomposition
// with a guard Gamma_t (a set of hyperedges) per node such that
//   (iii) B_t is covered by the union of its guard edges, and
//   (iv)  (union of Gamma_t) intersected with the union of the bags in
//         the subtree below t is contained in B_t ("descendant
//         condition").
// The hypertreewidth of the decomposition is the maximum guard size.
// Exact hw is NP-hard; this module provides validated decompositions,
// a greedy guard construction over any tree decomposition, and the
// induced upper bound hw(H) <= width, completing the width family
// tw >= hw >= fhw >= aw used by the paper's Figure 1 (Lemma 12).
#ifndef CQCOUNT_DECOMPOSITION_HYPERTREE_DECOMPOSITION_H_
#define CQCOUNT_DECOMPOSITION_HYPERTREE_DECOMPOSITION_H_

#include <vector>

#include "decomposition/tree_decomposition.h"
#include "hypergraph/hypergraph.h"
#include "util/status.h"

namespace cqcount {

/// A hypertree decomposition: a tree decomposition plus guards.
struct HypertreeDecomposition {
  TreeDecomposition base;
  /// guards[t] = indices of hyperedges of H guarding bag t.
  std::vector<std::vector<int>> guards;

  /// Hypertreewidth of this decomposition: max guard cardinality.
  int Width() const;

  /// Checks Definition 37: base validity plus conditions (iii) and (iv).
  Status Validate(const Hypergraph& h) const;
};

/// Builds a hypertree decomposition over `td` by greedily covering each
/// bag with hyperedges (condition (iii)). Condition (iv) is then enforced
/// by *expanding bags*: any vertex of a guard edge that reappears below
/// the node is added to the bag (which keeps (i)/(ii)/(iii) intact and
/// can only grow guards of ancestors, handled by iterating to a fixed
/// point). Returns an error if some bag vertex lies in no hyperedge.
StatusOr<HypertreeDecomposition> BuildHypertreeDecomposition(
    const Hypergraph& h, const TreeDecomposition& td);

/// Convenience: hw upper bound via the min-fill tree decomposition.
StatusOr<int> HypertreewidthGreedyBound(const Hypergraph& h);

}  // namespace cqcount

#endif  // CQCOUNT_DECOMPOSITION_HYPERTREE_DECOMPOSITION_H_
