#include "decomposition/tree_decomposition.h"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace cqcount {

int TreeDecomposition::Width() const {
  int width = -1;
  for (const auto& bag : bags) {
    width = std::max(width, static_cast<int>(bag.size()) - 1);
  }
  return width;
}

std::vector<std::vector<int>> TreeDecomposition::Children() const {
  std::vector<std::vector<int>> children(num_nodes());
  for (int i = 0; i < num_nodes(); ++i) {
    if (parent[i] >= 0) children[parent[i]].push_back(i);
  }
  return children;
}

Status TreeDecomposition::Validate(const Hypergraph& h) const {
  const int n = num_nodes();
  if (n == 0) return Status::InvalidArgument("decomposition has no nodes");
  if (static_cast<int>(parent.size()) != n) {
    return Status::InvalidArgument("parent array size mismatch");
  }
  if (root < 0 || root >= n || parent[root] != -1) {
    return Status::InvalidArgument("invalid root");
  }
  // Tree well-formedness: exactly one root, every node reaches the root.
  for (int i = 0; i < n; ++i) {
    if (i != root && parent[i] == -1) {
      return Status::InvalidArgument("multiple roots");
    }
    int steps = 0;
    int cur = i;
    while (cur != root) {
      cur = parent[cur];
      if (cur < 0 || cur >= n || ++steps > n) {
        return Status::InvalidArgument("parent pointers do not form a tree");
      }
    }
  }
  // Bags sorted/deduped and in range.
  for (const auto& bag : bags) {
    for (size_t j = 0; j < bag.size(); ++j) {
      if (bag[j] < 0 || bag[j] >= h.num_vertices()) {
        return Status::InvalidArgument("bag vertex out of range");
      }
      if (j > 0 && bag[j] <= bag[j - 1]) {
        return Status::InvalidArgument("bag not sorted/deduplicated");
      }
    }
  }
  // Condition (i): every hyperedge inside some bag.
  for (const auto& e : h.edges()) {
    bool covered = false;
    for (const auto& bag : bags) {
      if (std::includes(bag.begin(), bag.end(), e.begin(), e.end())) {
        covered = true;
        break;
      }
    }
    if (!covered) {
      return Status::InvalidArgument("hyperedge not covered by any bag");
    }
  }
  // Every vertex appears in some bag (needed so condition (ii) is
  // meaningful and by our convention each variable occurs in an atom).
  // Condition (ii): occurrences of each vertex form a connected subtree.
  for (Vertex v = 0; v < h.num_vertices(); ++v) {
    std::vector<int> holding;
    for (int i = 0; i < n; ++i) {
      if (std::binary_search(bags[i].begin(), bags[i].end(), v)) {
        holding.push_back(i);
      }
    }
    if (holding.empty()) {
      return Status::InvalidArgument("vertex missing from all bags");
    }
    // Connectivity: from every holding node, walking to the root must stay
    // inside `holding` until reaching the topmost holding node.
    std::vector<bool> holds(n, false);
    for (int i : holding) holds[i] = true;
    // The topmost holding node is the one all others must reach.
    int top = holding[0];
    {
      // Find the holding node of minimum depth.
      auto depth = [&](int node) {
        int d = 0;
        while (node != root) {
          node = parent[node];
          ++d;
        }
        return d;
      };
      int best_depth = depth(top);
      for (int i : holding) {
        int d = depth(i);
        if (d < best_depth) {
          best_depth = d;
          top = i;
        }
      }
    }
    for (int i : holding) {
      int cur = i;
      while (cur != top) {
        cur = parent[cur];
        if (cur == -1 || !holds[cur]) {
          std::ostringstream msg;
          msg << "vertex " << v << " occurrences not connected";
          return Status::InvalidArgument(msg.str());
        }
      }
    }
  }
  return Status::Ok();
}

TreeDecomposition TreeDecomposition::Trivial(const Hypergraph& h) {
  TreeDecomposition td;
  std::vector<Vertex> all(h.num_vertices());
  std::iota(all.begin(), all.end(), 0);
  td.bags.push_back(std::move(all));
  td.parent.push_back(-1);
  td.root = 0;
  return td;
}

}  // namespace cqcount
