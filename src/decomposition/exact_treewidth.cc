#include "decomposition/exact_treewidth.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "decomposition/elimination_order.h"
#include "hypergraph/primal_graph.h"
#include "util/hash.h"

namespace cqcount {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// Elimination-order DP state: `eliminated` is the mask of vertices already
// removed; f(eliminated) = best achievable max-cost for removing exactly
// that set first.
class FWidthSolver {
 public:
  FWidthSolver(const Hypergraph& h, const BagCostFn& cost)
      : n_(h.num_vertices()), cost_(cost), graph_(h) {}

  double Solve(uint32_t mask) {
    if (mask == 0) return kNegInf;
    auto it = memo_.find(mask);
    if (it != memo_.end()) return it->second;
    double best = std::numeric_limits<double>::infinity();
    for (int v = 0; v < n_; ++v) {
      if (!(mask & (1u << v))) continue;
      const uint32_t rest = mask & ~(1u << v);
      const double bag_cost = cost_(Bag(rest, v));
      // max(f(rest), bag_cost), short-circuit if already worse.
      if (bag_cost >= best) continue;
      const double sub = Solve(rest);
      best = std::min(best, std::max(sub, bag_cost));
    }
    memo_[mask] = best;
    return best;
  }

  // Bag produced by eliminating v when `eliminated` was removed before:
  // {v} + all w not eliminated, w != v, reachable from v through
  // eliminated vertices.
  std::vector<Vertex> Bag(uint32_t eliminated, int v) const {
    std::vector<Vertex> bag;
    std::vector<bool> visited(n_, false);
    std::vector<int> stack = {v};
    visited[v] = true;
    std::vector<bool> in_bag(n_, false);
    while (!stack.empty()) {
      const int u = stack.back();
      stack.pop_back();
      for (Vertex w : graph_.Neighbours(u)) {
        if (visited[w]) continue;
        if (eliminated & (1u << w)) {
          visited[w] = true;
          stack.push_back(w);
        } else if (w != v && !in_bag[w]) {
          in_bag[w] = true;
        }
      }
    }
    for (int w = 0; w < n_; ++w) {
      if (in_bag[w]) bag.push_back(w);
    }
    bag.push_back(v);
    std::sort(bag.begin(), bag.end());
    return bag;
  }

  // Recovers an optimal elimination order from the memo table.
  std::vector<Vertex> RecoverOrder() {
    std::vector<Vertex> reversed;
    uint32_t mask = (n_ == 32) ? ~0u : ((1u << n_) - 1);
    while (mask != 0) {
      const double target = Solve(mask);
      int chosen = -1;
      for (int v = 0; v < n_ && chosen < 0; ++v) {
        if (!(mask & (1u << v))) continue;
        const uint32_t rest = mask & ~(1u << v);
        const double bag_cost = cost_(Bag(rest, v));
        const double value = std::max(Solve(rest), bag_cost);
        if (value <= target + 1e-9) chosen = v;
      }
      reversed.push_back(chosen);
      mask &= ~(1u << chosen);
    }
    std::reverse(reversed.begin(), reversed.end());
    return reversed;
  }

 private:
  int n_;
  const BagCostFn& cost_;
  PrimalGraph graph_;
  std::unordered_map<uint32_t, double> memo_;
};

}  // namespace

StatusOr<FWidthResult> ExactFWidth(const Hypergraph& h, const BagCostFn& cost,
                                   int max_vertices) {
  const int n = h.num_vertices();
  if (n > max_vertices || n > 25) {
    return Status::ResourceExhausted(
        "hypergraph too large for exact f-width DP");
  }
  FWidthResult result;
  if (n == 0) {
    result.width = kNegInf;
    result.decomposition.bags.push_back({});
    result.decomposition.parent.push_back(-1);
    result.decomposition.root = 0;
    return result;
  }
  // Memoise the (possibly expensive, e.g. LP-based) bag cost.
  std::unordered_map<std::vector<Vertex>, double, VectorHash<Vertex>>
      cost_cache;
  BagCostFn cached_cost = [&](const std::vector<Vertex>& bag) {
    auto it = cost_cache.find(bag);
    if (it != cost_cache.end()) return it->second;
    const double c = cost(bag);
    cost_cache.emplace(bag, c);
    return c;
  };
  FWidthSolver solver(h, cached_cost);
  const uint32_t full = (n == 32) ? ~0u : ((1u << n) - 1);
  result.width = solver.Solve(full);
  result.order = solver.RecoverOrder();
  result.decomposition = DecompositionFromOrder(h, result.order);
  return result;
}

StatusOr<FWidthResult> ExactTreewidth(const Hypergraph& h, int max_vertices) {
  return ExactFWidth(
      h,
      [](const std::vector<Vertex>& bag) {
        return static_cast<double>(bag.size()) - 1.0;
      },
      max_vertices);
}

}  // namespace cqcount
