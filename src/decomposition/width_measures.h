// Hypergraph width measures used by the paper's classification:
// treewidth (Definition 4), fractional edge covers / fcn (Definition 39),
// fractional hypertreewidth (Definition 41), adaptive width
// (Definition 33), and a hypertreewidth upper bound (Definition 37).
#ifndef CQCOUNT_DECOMPOSITION_WIDTH_MEASURES_H_
#define CQCOUNT_DECOMPOSITION_WIDTH_MEASURES_H_

#include <vector>

#include "decomposition/exact_treewidth.h"
#include "decomposition/tree_decomposition.h"
#include "hypergraph/hypergraph.h"
#include "util/status.h"

namespace cqcount {

/// Fractional edge cover number fcn(H) (Definition 39) via LP. Returns
/// +infinity when some vertex lies in no hyperedge (no cover exists).
double FractionalCoverNumber(const Hypergraph& h);

/// fcn(H[bag]) for a subset of vertices (Definition 39 induced hypergraph).
double FractionalCoverNumberOfSubset(const Hypergraph& h,
                                     const std::vector<Vertex>& bag);

/// A maximum fractional independent set of H (Definition 33) via LP;
/// `mu` receives the optimal weights; returns its total weight (equals
/// fcn(H) by LP duality when H has no isolated vertices).
double MaxFractionalIndependentSet(const Hypergraph& h,
                                   std::vector<double>* mu);

/// Fractional hypertreewidth of a given decomposition: max_t fcn(H[B_t]).
double FhwOfDecomposition(const Hypergraph& h, const TreeDecomposition& td);

/// mu(X) = sum of mu over X; the mu-width of `td` is max_t mu(B_t).
double MuWidthOfDecomposition(const std::vector<double>& mu,
                              const TreeDecomposition& td);

/// Exact fractional hypertreewidth (Definition 41) with witness
/// decomposition; exponential in |V(H)|, so bounded by `max_vertices`.
StatusOr<FWidthResult> ExactFhw(const Hypergraph& h, int max_vertices = 18);

/// Exact mu-width (Definition 32) of H for the given vertex weights.
StatusOr<FWidthResult> ExactMuWidth(const Hypergraph& h,
                                    const std::vector<double>& mu,
                                    int max_vertices = 20);

/// A lower bound on adaptive width aw(H) (Definition 33): the exact
/// mu-width of candidate fractional independent sets (uniform 1/arity and
/// the LP-optimal one). aw is a supremum over all mu, so this is a bound.
StatusOr<double> AdaptiveWidthLowerBound(const Hypergraph& h,
                                         int max_vertices = 20);

/// An upper bound on aw(H): aw <= fhw (weak LP duality per bag).
StatusOr<double> AdaptiveWidthUpperBound(const Hypergraph& h,
                                         int max_vertices = 18);

/// Hypertreewidth upper bound of a decomposition: per bag, a greedy
/// integral edge cover (guards, Definition 37); returns the max guard size.
int HypertreewidthUpperBound(const Hypergraph& h, const TreeDecomposition& td);

/// Objective for ComputeDecomposition.
enum class WidthObjective { kTreewidth, kFractionalHypertreewidth };

/// Computes a good tree decomposition: exact search when
/// |V(H)| <= exact_limit, otherwise the min-fill heuristic.
/// Always returns a decomposition valid for `h`.
FWidthResult ComputeDecomposition(const Hypergraph& h,
                                  WidthObjective objective,
                                  int exact_limit = 14);

}  // namespace cqcount

#endif  // CQCOUNT_DECOMPOSITION_WIDTH_MEASURES_H_
