#include "decomposition/nice_decomposition.h"

#include <algorithm>
#include <cassert>
#include <functional>

namespace cqcount {
namespace {

// Set difference a \ b for sorted vectors.
std::vector<Vertex> Minus(const std::vector<Vertex>& a,
                          const std::vector<Vertex>& b) {
  std::vector<Vertex> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

std::vector<Vertex> Without(std::vector<Vertex> bag, Vertex v) {
  bag.erase(std::remove(bag.begin(), bag.end(), v), bag.end());
  return bag;
}

std::vector<Vertex> With(std::vector<Vertex> bag, Vertex v) {
  bag.insert(std::upper_bound(bag.begin(), bag.end(), v), v);
  return bag;
}

}  // namespace

int NiceTreeDecomposition::AddNode(NiceNodeKind kind, std::vector<Vertex> bag,
                                   Vertex var) {
  Node node;
  node.kind = kind;
  node.bag = std::move(bag);
  node.var = var;
  nodes_.push_back(std::move(node));
  return static_cast<int>(nodes_.size()) - 1;
}

NiceTreeDecomposition NiceTreeDecomposition::FromTreeDecomposition(
    const Hypergraph& h, const TreeDecomposition& td) {
  NiceTreeDecomposition nice;
  const auto children = td.Children();

  // Creates the chain of unary nodes strictly below a node whose bag is
  // `from`, transitioning to bag `to` (Lemma 43: first drop from\to one by
  // one, then add to\from one by one). Returns {top, bottom} node ids, or
  // {-1, -1} when from == to.
  auto build_chain = [&](const std::vector<Vertex>& from,
                         const std::vector<Vertex>& to) -> std::pair<int, int> {
    std::vector<Vertex> current = from;
    int top = -1;
    int prev = -1;
    auto link = [&](int node) {
      if (prev >= 0) nice.nodes_[prev].children.push_back(node);
      if (top < 0) top = node;
      prev = node;
    };
    for (Vertex v : Minus(from, to)) {
      current = Without(current, v);
      link(nice.AddNode(NiceNodeKind::kLeaf, current, -1));
    }
    for (Vertex v : Minus(to, from)) {
      current = With(current, v);
      link(nice.AddNode(NiceNodeKind::kLeaf, current, -1));
    }
    return {top, prev};
  };

  // expand(nice_id, t): nice_id is a childless nice node whose bag equals
  // B_t; attaches the expansion of td-subtree rooted at t below nice_id.
  std::function<void(int, int)> expand;

  // descend(nice_id, c): attaches the transition from nice_id's bag to
  // td-node c's bag below nice_id, then expands c.
  auto descend = [&](int nice_id, int c) {
    // Copy: build_chain appends to nodes_, which may reallocate and would
    // invalidate a reference into it.
    const std::vector<Vertex> from = nice.nodes_[nice_id].bag;
    if (from == td.bags[c]) {
      expand(nice_id, c);
      return;
    }
    auto [top, bottom] = build_chain(from, td.bags[c]);
    nice.nodes_[nice_id].children.push_back(top);
    expand(bottom, c);
  };

  expand = [&](int nice_id, int t) {
    const std::vector<int>& kids = children[t];
    const std::vector<Vertex> bag = td.bags[t];
    if (kids.empty()) {
      // Chain down to the empty bag; if the bag is already empty the node
      // remains a leaf.
      if (!bag.empty()) {
        auto [top, bottom] = build_chain(bag, {});
        nice.nodes_[nice_id].children.push_back(top);
        (void)bottom;
      }
      return;
    }
    if (kids.size() == 1) {
      descend(nice_id, kids[0]);
      return;
    }
    // k >= 2 children: nice_id becomes the top of a left-leaning comb of
    // join nodes, all with bag B_t.
    std::function<void(int, size_t)> attach = [&](int join_id, size_t index) {
      int left = nice.AddNode(NiceNodeKind::kLeaf, bag, -1);
      int right = nice.AddNode(NiceNodeKind::kLeaf, bag, -1);
      nice.nodes_[join_id].children = {left, right};
      descend(left, kids[index]);
      if (index + 2 == kids.size()) {
        descend(right, kids[index + 1]);
      } else {
        attach(right, index + 1);
      }
    };
    attach(nice_id, 0);
  };

  // Root: empty bag; transition into the td root's bag, then expand.
  int root = nice.AddNode(NiceNodeKind::kLeaf, {}, -1);
  assert(root == 0);
  (void)root;
  if (td.bags[td.root].empty()) {
    expand(0, td.root);
  } else {
    auto [top, bottom] = build_chain({}, td.bags[td.root]);
    nice.nodes_[0].children.push_back(top);
    expand(bottom, td.root);
  }

  // Final pass: derive kinds from each node's relation to its children.
  for (auto& node : nice.nodes_) {
    if (node.children.empty()) {
      node.kind = NiceNodeKind::kLeaf;
      node.var = -1;
      assert(node.bag.empty() && "leaf with non-empty bag");
      continue;
    }
    if (node.children.size() == 2) {
      node.kind = NiceNodeKind::kJoin;
      node.var = -1;
      continue;
    }
    const auto& child_bag = nice.nodes_[node.children[0]].bag;
    std::vector<Vertex> gained = Minus(node.bag, child_bag);
    std::vector<Vertex> lost = Minus(child_bag, node.bag);
    assert(gained.size() + lost.size() == 1 &&
           "unary nice node must differ from child in exactly one vertex");
    if (gained.size() == 1) {
      node.kind = NiceNodeKind::kIntroduce;
      node.var = gained[0];
    } else {
      node.kind = NiceNodeKind::kForget;
      node.var = lost[0];
    }
  }
  (void)h;
  return nice;
}

int NiceTreeDecomposition::Height() const {
  std::vector<int> height(nodes_.size(), 0);
  for (int t = num_nodes() - 1; t >= 0; --t) {
    for (int c : nodes_[t].children) {
      height[t] = std::max(height[t], height[c] + 1);
    }
  }
  return nodes_.empty() ? 0 : height[0];
}

Status NiceTreeDecomposition::Validate(const Hypergraph& h) const {
  if (nodes_.empty()) return Status::InvalidArgument("empty decomposition");
  if (!nodes_[0].bag.empty()) {
    return Status::InvalidArgument("root bag not empty");
  }
  for (int t = 0; t < num_nodes(); ++t) {
    const Node& node = nodes_[t];
    for (int c : node.children) {
      if (c <= t || c >= num_nodes()) {
        return Status::InvalidArgument("child index not below parent");
      }
    }
    switch (node.kind) {
      case NiceNodeKind::kLeaf:
        if (!node.children.empty() || !node.bag.empty()) {
          return Status::InvalidArgument("malformed leaf node");
        }
        break;
      case NiceNodeKind::kJoin: {
        if (node.children.size() != 2) {
          return Status::InvalidArgument("join node without two children");
        }
        for (int c : node.children) {
          if (nodes_[c].bag != node.bag) {
            return Status::InvalidArgument("join child bag differs");
          }
        }
        break;
      }
      case NiceNodeKind::kIntroduce: {
        if (node.children.size() != 1) {
          return Status::InvalidArgument("introduce node arity");
        }
        if (With(nodes_[node.children[0]].bag, node.var) != node.bag) {
          return Status::InvalidArgument("introduce bag mismatch");
        }
        break;
      }
      case NiceNodeKind::kForget: {
        if (node.children.size() != 1) {
          return Status::InvalidArgument("forget node arity");
        }
        if (Without(nodes_[node.children[0]].bag, node.var) != node.bag) {
          return Status::InvalidArgument("forget bag mismatch");
        }
        break;
      }
    }
  }
  // Each node except the root must be the child of exactly one node.
  std::vector<int> indegree(num_nodes(), 0);
  for (const Node& node : nodes_) {
    for (int c : node.children) ++indegree[c];
  }
  for (int t = 0; t < num_nodes(); ++t) {
    if (indegree[t] != (t == 0 ? 0 : 1)) {
      return Status::InvalidArgument("not a tree");
    }
  }
  return ToTreeDecomposition().Validate(h);
}

TreeDecomposition NiceTreeDecomposition::ToTreeDecomposition() const {
  TreeDecomposition td;
  td.bags.reserve(nodes_.size());
  td.parent.assign(nodes_.size(), -1);
  for (const Node& node : nodes_) td.bags.push_back(node.bag);
  for (int t = 0; t < num_nodes(); ++t) {
    for (int c : nodes_[t].children) td.parent[c] = t;
  }
  td.root = 0;
  return td;
}

}  // namespace cqcount
