// Tree decompositions (Definition 4).
//
// A tree decomposition of a hypergraph H is a rooted tree whose nodes carry
// bags B_t subseteq V(H) such that (i) every hyperedge is contained in some
// bag and (ii) the nodes containing any fixed vertex form a connected
// subtree. Width = max bag size - 1.
#ifndef CQCOUNT_DECOMPOSITION_TREE_DECOMPOSITION_H_
#define CQCOUNT_DECOMPOSITION_TREE_DECOMPOSITION_H_

#include <vector>

#include "hypergraph/hypergraph.h"
#include "util/status.h"

namespace cqcount {

/// A rooted tree decomposition. Bags are sorted vertex lists.
struct TreeDecomposition {
  /// bags[i] is the bag of node i (sorted, duplicate-free).
  std::vector<std::vector<Vertex>> bags;
  /// parent[i] is the parent node of i, or -1 for the root.
  std::vector<int> parent;
  /// Index of the root node.
  int root = 0;

  int num_nodes() const { return static_cast<int>(bags.size()); }

  /// Width of the decomposition: max bag size - 1 (-1 if all bags empty).
  int Width() const;

  /// children[i] = list of child node indices, derived from `parent`.
  std::vector<std::vector<int>> Children() const;

  /// Checks tree-decomposition validity for `h`: well-formed rooted tree,
  /// every hyperedge inside some bag, and vertex-connectivity of bags.
  Status Validate(const Hypergraph& h) const;

  /// A single-node decomposition whose bag is all of V(H).
  static TreeDecomposition Trivial(const Hypergraph& h);
};

}  // namespace cqcount

#endif  // CQCOUNT_DECOMPOSITION_TREE_DECOMPOSITION_H_
