#include "decomposition/elimination_order.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "hypergraph/primal_graph.h"

namespace cqcount {
namespace {

std::vector<Vertex> GreedyOrder(const Hypergraph& h, bool by_fill) {
  PrimalGraph g(h);
  const int n = h.num_vertices();
  std::vector<Vertex> order;
  order.reserve(n);
  for (int step = 0; step < n; ++step) {
    Vertex best = -1;
    long best_score = std::numeric_limits<long>::max();
    for (Vertex v = 0; v < n; ++v) {
      if (g.IsEliminated(v)) continue;
      long score = by_fill ? g.FillIn(v) : g.Degree(v);
      if (score < best_score) {
        best_score = score;
        best = v;
      }
    }
    assert(best >= 0);
    g.Eliminate(best);
    order.push_back(best);
  }
  return order;
}

}  // namespace

std::vector<Vertex> MinFillOrder(const Hypergraph& h) {
  return GreedyOrder(h, /*by_fill=*/true);
}

std::vector<Vertex> MinDegreeOrder(const Hypergraph& h) {
  return GreedyOrder(h, /*by_fill=*/false);
}

TreeDecomposition DecompositionFromOrder(const Hypergraph& h,
                                         const std::vector<Vertex>& order) {
  const int n = h.num_vertices();
  assert(static_cast<int>(order.size()) == n);
  PrimalGraph g(h);
  // position[v] = index of v in the elimination order.
  std::vector<int> position(n, -1);
  for (int i = 0; i < n; ++i) {
    assert(order[i] >= 0 && order[i] < n && position[order[i]] == -1);
    position[order[i]] = i;
  }

  TreeDecomposition td;
  td.bags.resize(n);
  td.parent.assign(n, -1);
  // Node i corresponds to order[i]; bag = {v} + neighbours at elimination.
  // Parent of node i = node of the earliest-eliminated bag member after v.
  for (int i = 0; i < n; ++i) {
    const Vertex v = order[i];
    std::vector<Vertex> bag = g.Eliminate(v);
    int next = n;  // Elimination position of the successor.
    for (Vertex w : bag) {
      if (w != v) next = std::min(next, position[w]);
    }
    td.bags[i] = std::move(bag);
    if (next < n) {
      td.parent[i] = next;
    }
  }
  // All parent-less nodes except the last become children of the last node
  // (this links disconnected components into a single tree; bag overlap is
  // empty so condition (ii) is unaffected).
  td.root = n - 1;
  if (n == 0) {
    td.bags.push_back({});
    td.parent.push_back(-1);
    td.root = 0;
    return td;
  }
  for (int i = 0; i + 1 < n; ++i) {
    if (td.parent[i] == -1) td.parent[i] = td.root;
  }
  td.parent[td.root] = -1;
  return td;
}

int Degeneracy(const Hypergraph& h) {
  // Repeatedly delete (plain deletion, no fill) a minimum-degree vertex;
  // the largest degree seen at deletion time is the degeneracy.
  const int n = h.num_vertices();
  std::vector<std::vector<bool>> adj(n, std::vector<bool>(n, false));
  std::vector<int> deg(n, 0);
  PrimalGraph g(h);
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v : g.Neighbours(u)) {
      if (!adj[u][v]) {
        adj[u][v] = true;
        ++deg[u];
      }
    }
  }
  std::vector<bool> removed(n, false);
  int degeneracy = 0;
  for (int step = 0; step < n; ++step) {
    Vertex best = -1;
    int best_deg = std::numeric_limits<int>::max();
    for (Vertex v = 0; v < n; ++v) {
      if (!removed[v] && deg[v] < best_deg) {
        best_deg = deg[v];
        best = v;
      }
    }
    degeneracy = std::max(degeneracy, best_deg);
    removed[best] = true;
    for (Vertex w = 0; w < n; ++w) {
      if (adj[best][w] && !removed[w]) --deg[w];
    }
  }
  return degeneracy;
}

}  // namespace cqcount
