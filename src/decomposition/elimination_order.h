// Elimination orders and the decompositions they induce.
//
// Eliminating vertices of the primal graph in some order yields a tree
// decomposition whose bags are {v} + N(v) at elimination time. Min-fill and
// min-degree are the standard heuristics; exact searches live in
// exact_treewidth.h / width_measures.h.
#ifndef CQCOUNT_DECOMPOSITION_ELIMINATION_ORDER_H_
#define CQCOUNT_DECOMPOSITION_ELIMINATION_ORDER_H_

#include <vector>

#include "decomposition/tree_decomposition.h"
#include "hypergraph/hypergraph.h"

namespace cqcount {

/// Min-fill elimination order of the primal graph of `h` (deterministic:
/// ties broken by smallest vertex id).
std::vector<Vertex> MinFillOrder(const Hypergraph& h);

/// Min-degree elimination order (deterministic tie-breaking).
std::vector<Vertex> MinDegreeOrder(const Hypergraph& h);

/// Builds the tree decomposition induced by eliminating the vertices of the
/// primal graph of `h` in `order` (which must be a permutation of V(h)).
/// The result always satisfies conditions (i) and (ii) of Definition 4.
TreeDecomposition DecompositionFromOrder(const Hypergraph& h,
                                         const std::vector<Vertex>& order);

/// Degeneracy of the primal graph (a treewidth lower bound).
int Degeneracy(const Hypergraph& h);

}  // namespace cqcount

#endif  // CQCOUNT_DECOMPOSITION_ELIMINATION_ORDER_H_
