// Nice tree decompositions (Definition 42) and the Lemma 43 conversion.
//
// A nice tree decomposition has: empty bags at the root and leaves, at most
// two children per node, join nodes (two children) with both child bags
// equal to the node's bag, and unary nodes whose bag differs from the
// child's bag in exactly one element. The Lemma 52 automaton construction
// and the Theorem 16 FPRAS are driven off this structure.
#ifndef CQCOUNT_DECOMPOSITION_NICE_DECOMPOSITION_H_
#define CQCOUNT_DECOMPOSITION_NICE_DECOMPOSITION_H_

#include <vector>

#include "decomposition/tree_decomposition.h"
#include "hypergraph/hypergraph.h"
#include "util/status.h"

namespace cqcount {

/// Node kinds of a nice tree decomposition (relative to the child):
/// - kLeaf: no children, empty bag.
/// - kIntroduce: one child, B_t = B_child + {var}.
/// - kForget: one child, B_t = B_child - {var}.
/// - kJoin: two children, both bags equal to B_t.
enum class NiceNodeKind { kLeaf, kIntroduce, kForget, kJoin };

/// A nice tree decomposition; nodes are stored in a flat array with the
/// guarantee that children have larger indices than their parent (so a
/// reverse scan is a valid bottom-up order).
class NiceTreeDecomposition {
 public:
  struct Node {
    NiceNodeKind kind = NiceNodeKind::kLeaf;
    /// Sorted bag.
    std::vector<Vertex> bag;
    /// Child node ids (0, 1 or 2 entries).
    std::vector<int> children;
    /// For kIntroduce / kForget: the vertex added/removed vs the child.
    Vertex var = -1;
  };

  /// Converts an arbitrary tree decomposition of `h` into a nice one
  /// (Lemma 43 construction). Every bag of the result is a subset of some
  /// input bag, so all monotone width measures are preserved or improved.
  static NiceTreeDecomposition FromTreeDecomposition(
      const Hypergraph& h, const TreeDecomposition& td);

  int root() const { return 0; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const Node& node(int t) const { return nodes_[t]; }
  const std::vector<Node>& nodes() const { return nodes_; }

  /// Height of the tree (edges on the longest root-to-leaf path).
  int Height() const;

  /// Checks Definition 42 plus tree-decomposition validity for `h`.
  Status Validate(const Hypergraph& h) const;

  /// View as a plain TreeDecomposition (for width computations).
  TreeDecomposition ToTreeDecomposition() const;

 private:
  // Appends a node and returns its id.
  int AddNode(NiceNodeKind kind, std::vector<Vertex> bag, Vertex var);

  std::vector<Node> nodes_;
};

}  // namespace cqcount

#endif  // CQCOUNT_DECOMPOSITION_NICE_DECOMPOSITION_H_
