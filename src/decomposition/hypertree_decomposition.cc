#include "decomposition/hypertree_decomposition.h"

#include <algorithm>
#include <set>

#include "decomposition/elimination_order.h"

namespace cqcount {
namespace {

// Greedy set cover of `bag` by hyperedges of `h`; returns edge indices or
// an empty optional when some vertex is uncoverable.
StatusOr<std::vector<int>> GreedyGuard(const Hypergraph& h,
                                       const std::vector<Vertex>& bag) {
  std::vector<int> guard;
  std::set<Vertex> uncovered(bag.begin(), bag.end());
  while (!uncovered.empty()) {
    int best = -1;
    size_t best_gain = 0;
    for (int e = 0; e < h.num_edges(); ++e) {
      size_t gain = 0;
      for (Vertex v : h.edge(e)) {
        if (uncovered.count(v)) ++gain;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = e;
      }
    }
    if (best < 0) {
      return Status::InvalidArgument(
          "bag vertex lies in no hyperedge; no guard exists");
    }
    guard.push_back(best);
    for (Vertex v : h.edge(best)) uncovered.erase(v);
  }
  std::sort(guard.begin(), guard.end());
  return guard;
}

}  // namespace

int HypertreeDecomposition::Width() const {
  size_t width = 0;
  for (const auto& guard : guards) width = std::max(width, guard.size());
  return static_cast<int>(width);
}

Status HypertreeDecomposition::Validate(const Hypergraph& h) const {
  Status s = base.Validate(h);
  if (!s.ok()) return s;
  if (guards.size() != base.bags.size()) {
    return Status::InvalidArgument("guard count mismatch");
  }
  // Subtree vertex sets (union of descendant bags), bottom-up.
  const auto children = base.Children();
  const int n = base.num_nodes();
  std::vector<std::set<Vertex>> below(n);
  // Process children before parents: repeatedly scan (n is small).
  std::vector<int> order;
  std::vector<int> stack = {base.root};
  while (!stack.empty()) {
    int t = stack.back();
    stack.pop_back();
    order.push_back(t);
    for (int c : children[t]) stack.push_back(c);
  }
  std::reverse(order.begin(), order.end());
  for (int t : order) {
    below[t].insert(base.bags[t].begin(), base.bags[t].end());
    for (int c : children[t]) {
      below[t].insert(below[c].begin(), below[c].end());
    }
  }

  for (int t = 0; t < n; ++t) {
    // (iii) bag covered by guard.
    std::set<Vertex> guarded;
    for (int e : guards[t]) {
      if (e < 0 || e >= h.num_edges()) {
        return Status::InvalidArgument("guard edge index out of range");
      }
      guarded.insert(h.edge(e).begin(), h.edge(e).end());
    }
    for (Vertex v : base.bags[t]) {
      if (!guarded.count(v)) {
        return Status::InvalidArgument("bag vertex not covered by guard");
      }
    }
    // (iv) guard vertices reappearing below t must be in B_t.
    for (Vertex v : guarded) {
      if (below[t].count(v) &&
          !std::binary_search(base.bags[t].begin(), base.bags[t].end(), v)) {
        return Status::InvalidArgument(
            "guard vertex occurs below the node but not in its bag "
            "(condition (iv))");
      }
    }
  }
  return Status::Ok();
}

StatusOr<HypertreeDecomposition> BuildHypertreeDecomposition(
    const Hypergraph& h, const TreeDecomposition& td) {
  HypertreeDecomposition htd;
  htd.base = td;
  const auto children = htd.base.Children();
  const int n = htd.base.num_nodes();

  // Fixed point: guards may force bag growth (condition (iv)); grown
  // bags may need new guards and connectivity repair. Bags only grow,
  // so the loop terminates.
  for (int round = 0; round < 2 * n + 4; ++round) {
    // Guards for the current bags (condition (iii)).
    htd.guards.assign(n, {});
    for (int t = 0; t < n; ++t) {
      auto guard = GreedyGuard(h, htd.base.bags[t]);
      if (!guard.ok()) return guard.status();
      htd.guards[t] = *std::move(guard);
    }
    Status valid = htd.Validate(h);
    if (valid.ok()) return htd;

    // Enforce (iv): guard vertices occurring below a node join its bag.
    std::vector<std::set<Vertex>> below(n);
    std::vector<int> order;
    std::vector<int> stack = {htd.base.root};
    while (!stack.empty()) {
      int t = stack.back();
      stack.pop_back();
      order.push_back(t);
      for (int c : children[t]) stack.push_back(c);
    }
    std::reverse(order.begin(), order.end());
    for (int t : order) {
      below[t].insert(htd.base.bags[t].begin(), htd.base.bags[t].end());
      for (int c : children[t]) {
        below[t].insert(below[c].begin(), below[c].end());
      }
    }
    for (int t = 0; t < n; ++t) {
      std::set<Vertex> bag(htd.base.bags[t].begin(),
                           htd.base.bags[t].end());
      for (int e : htd.guards[t]) {
        for (Vertex v : h.edge(e)) {
          if (below[t].count(v)) bag.insert(v);
        }
      }
      htd.base.bags[t].assign(bag.begin(), bag.end());
    }

    // Repair connectivity (condition (ii)): connect all occurrences of a
    // vertex through the root (conservative but always sound).
    for (Vertex v = 0; v < h.num_vertices(); ++v) {
      std::vector<int> holding;
      for (int t = 0; t < n; ++t) {
        if (std::binary_search(htd.base.bags[t].begin(),
                               htd.base.bags[t].end(), v)) {
          holding.push_back(t);
        }
      }
      if (holding.size() <= 1) continue;
      // Already connected? Check cheaply: all occurrences reach the
      // topmost one through held nodes.
      std::set<int> holds(holding.begin(), holding.end());
      auto depth = [&](int node) {
        int d = 0;
        while (node != htd.base.root) {
          node = htd.base.parent[node];
          ++d;
        }
        return d;
      };
      int top = holding[0];
      for (int t : holding) {
        if (depth(t) < depth(top)) top = t;
      }
      bool connected = true;
      for (int t : holding) {
        int cur = t;
        while (cur != top && connected) {
          cur = htd.base.parent[cur];
          if (cur == -1 || !holds.count(cur)) connected = false;
        }
      }
      if (connected) continue;
      // Fill v along every occurrence's path to the root.
      for (int t : holding) {
        int cur = t;
        while (cur != -1) {
          auto& bag = htd.base.bags[cur];
          if (!std::binary_search(bag.begin(), bag.end(), v)) {
            bag.insert(std::upper_bound(bag.begin(), bag.end(), v), v);
          }
          cur = htd.base.parent[cur];
        }
      }
    }
  }
  Status valid = htd.Validate(h);
  if (!valid.ok()) {
    return Status::Internal("hypertree construction failed validation: " +
                            valid.message());
  }
  return htd;
}

StatusOr<int> HypertreewidthGreedyBound(const Hypergraph& h) {
  TreeDecomposition td = DecompositionFromOrder(h, MinFillOrder(h));
  auto htd = BuildHypertreeDecomposition(h, td);
  if (!htd.ok()) return htd.status();
  return htd->Width();
}

}  // namespace cqcount
