#include "decomposition/width_measures.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "decomposition/elimination_order.h"
#include "lp/simplex.h"

namespace cqcount {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

double FractionalCoverNumber(const Hypergraph& h) {
  const int n = h.num_vertices();
  const int m = h.num_edges();
  if (n == 0) return 0.0;
  for (Vertex v = 0; v < n; ++v) {
    if (h.incident_edges(v).empty()) return kInf;
  }
  // min sum gamma_e  s.t.  for each v: sum_{e contains v} gamma_e >= 1.
  std::vector<double> c(m, 1.0);
  std::vector<std::vector<double>> a(n, std::vector<double>(m, 0.0));
  std::vector<double> b(n, 1.0);
  for (Vertex v = 0; v < n; ++v) {
    for (int e : h.incident_edges(v)) a[v][e] = 1.0;
  }
  LpResult r = SolveCoveringLpMin(c, a, b);
  assert(r.status == LpStatus::kOptimal);
  return r.objective;
}

double FractionalCoverNumberOfSubset(const Hypergraph& h,
                                     const std::vector<Vertex>& bag) {
  if (bag.empty()) return 0.0;
  return FractionalCoverNumber(h.Induced(bag));
}

double MaxFractionalIndependentSet(const Hypergraph& h,
                                   std::vector<double>* mu) {
  const int n = h.num_vertices();
  const int m = h.num_edges();
  if (n == 0) {
    if (mu) mu->clear();
    return 0.0;
  }
  // max sum mu_v  s.t.  for each edge e: sum_{v in e} mu_v <= 1, mu <= 1.
  // (mu_v <= 1 keeps isolated vertices bounded; for covered vertices the
  // edge constraints already imply mu_v <= 1.)
  std::vector<double> c(n, 1.0);
  std::vector<std::vector<double>> a;
  std::vector<double> b;
  for (int e = 0; e < m; ++e) {
    std::vector<double> row(n, 0.0);
    for (Vertex v : h.edge(e)) row[v] = 1.0;
    a.push_back(std::move(row));
    b.push_back(1.0);
  }
  for (Vertex v = 0; v < n; ++v) {
    std::vector<double> row(n, 0.0);
    row[v] = 1.0;
    a.push_back(std::move(row));
    b.push_back(1.0);
  }
  LpResult r = SolveLpMax(c, a, b);
  assert(r.status == LpStatus::kOptimal);
  if (mu) *mu = r.x;
  return r.objective;
}

double FhwOfDecomposition(const Hypergraph& h, const TreeDecomposition& td) {
  double width = 0.0;
  for (const auto& bag : td.bags) {
    width = std::max(width, FractionalCoverNumberOfSubset(h, bag));
  }
  return width;
}

double MuWidthOfDecomposition(const std::vector<double>& mu,
                              const TreeDecomposition& td) {
  double width = 0.0;
  for (const auto& bag : td.bags) {
    double total = 0.0;
    for (Vertex v : bag) total += mu[v];
    width = std::max(width, total);
  }
  return width;
}

StatusOr<FWidthResult> ExactFhw(const Hypergraph& h, int max_vertices) {
  return ExactFWidth(
      h,
      [&h](const std::vector<Vertex>& bag) {
        return FractionalCoverNumberOfSubset(h, bag);
      },
      max_vertices);
}

StatusOr<FWidthResult> ExactMuWidth(const Hypergraph& h,
                                    const std::vector<double>& mu,
                                    int max_vertices) {
  assert(static_cast<int>(mu.size()) == h.num_vertices());
  return ExactFWidth(
      h,
      [&mu](const std::vector<Vertex>& bag) {
        double total = 0.0;
        for (Vertex v : bag) total += mu[v];
        return total;
      },
      max_vertices);
}

StatusOr<double> AdaptiveWidthLowerBound(const Hypergraph& h,
                                         int max_vertices) {
  const int n = h.num_vertices();
  if (n == 0) return 0.0;
  std::vector<std::vector<double>> candidates;
  // Uniform 1/arity (Observation 34's witness).
  const int arity = h.Arity();
  if (arity > 0) {
    candidates.emplace_back(n, 1.0 / static_cast<double>(arity));
  }
  // LP-optimal fractional independent set.
  std::vector<double> opt_mu;
  MaxFractionalIndependentSet(h, &opt_mu);
  candidates.push_back(std::move(opt_mu));

  double best = 0.0;
  for (const auto& mu : candidates) {
    auto result = ExactMuWidth(h, mu, max_vertices);
    if (!result.ok()) return result.status();
    best = std::max(best, result->width);
  }
  return best;
}

StatusOr<double> AdaptiveWidthUpperBound(const Hypergraph& h,
                                         int max_vertices) {
  auto fhw = ExactFhw(h, max_vertices);
  if (!fhw.ok()) return fhw.status();
  return fhw->width;
}

int HypertreewidthUpperBound(const Hypergraph& h,
                             const TreeDecomposition& td) {
  int width = 0;
  for (const auto& bag : td.bags) {
    // Greedy set cover of `bag` by hyperedges.
    std::vector<bool> covered(bag.size(), false);
    int guards = 0;
    size_t remaining = bag.size();
    while (remaining > 0) {
      int best_edge = -1;
      size_t best_gain = 0;
      for (int e = 0; e < h.num_edges(); ++e) {
        size_t gain = 0;
        for (size_t i = 0; i < bag.size(); ++i) {
          if (covered[i]) continue;
          const auto& edge = h.edge(e);
          if (std::binary_search(edge.begin(), edge.end(), bag[i])) ++gain;
        }
        if (gain > best_gain) {
          best_gain = gain;
          best_edge = e;
        }
      }
      if (best_edge < 0) break;  // Uncoverable vertex (no incident edge).
      ++guards;
      const auto& edge = h.edge(best_edge);
      for (size_t i = 0; i < bag.size(); ++i) {
        if (!covered[i] &&
            std::binary_search(edge.begin(), edge.end(), bag[i])) {
          covered[i] = true;
          --remaining;
        }
      }
    }
    width = std::max(width, guards);
  }
  return width;
}

FWidthResult ComputeDecomposition(const Hypergraph& h,
                                  WidthObjective objective,
                                  int exact_limit) {
  if (h.num_vertices() <= exact_limit) {
    StatusOr<FWidthResult> exact =
        objective == WidthObjective::kTreewidth
            ? ExactTreewidth(h, exact_limit)
            : ExactFhw(h, exact_limit);
    if (exact.ok()) return *std::move(exact);
  }
  FWidthResult result;
  result.order = MinFillOrder(h);
  result.decomposition = DecompositionFromOrder(h, result.order);
  result.width =
      objective == WidthObjective::kTreewidth
          ? static_cast<double>(result.decomposition.Width())
          : FhwOfDecomposition(h, result.decomposition);
  return result;
}

}  // namespace cqcount
