// Exact width computations via elimination-order dynamic programming.
//
// For a monotone bag-cost function f (f(X) <= f(Y) whenever X subseteq Y),
// the minimum over all tree decompositions of max_t f(B_t) equals the
// minimum over elimination orders of the maximum f over the order's bags
// (bags of a decomposition form a chordal completion; monotonicity lets us
// restrict to maximal cliques). This gives exact treewidth (f = |X|-1),
// exact fractional hypertreewidth (f = fcn(H[X]), monotone by
// Observation 40), and exact mu-width for a fractional independent set mu
// (Definition 32/33).
//
// Complexity is O(2^n poly(n) * cost-eval), so callers bound n.
#ifndef CQCOUNT_DECOMPOSITION_EXACT_TREEWIDTH_H_
#define CQCOUNT_DECOMPOSITION_EXACT_TREEWIDTH_H_

#include <functional>
#include <vector>

#include "decomposition/tree_decomposition.h"
#include "hypergraph/hypergraph.h"
#include "util/status.h"

namespace cqcount {

/// Cost assigned to a (sorted) candidate bag.
using BagCostFn = std::function<double(const std::vector<Vertex>&)>;

/// Result of an exact f-width computation.
struct FWidthResult {
  /// The exact f-width of the hypergraph.
  double width = 0.0;
  /// An elimination order achieving it.
  std::vector<Vertex> order;
  /// The induced tree decomposition (bags from the elimination).
  TreeDecomposition decomposition;
};

/// Exact f-width by subset DP; `cost` must be monotone under set inclusion.
/// Fails with kResourceExhausted when h has more than `max_vertices`
/// vertices (the DP is exponential).
StatusOr<FWidthResult> ExactFWidth(const Hypergraph& h, const BagCostFn& cost,
                                   int max_vertices = 22);

/// Exact treewidth (Definition 4) with witness decomposition.
StatusOr<FWidthResult> ExactTreewidth(const Hypergraph& h,
                                      int max_vertices = 22);

}  // namespace cqcount

#endif  // CQCOUNT_DECOMPOSITION_EXACT_TREEWIDTH_H_
