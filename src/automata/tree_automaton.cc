#include "automata/tree_automaton.h"

#include <algorithm>

namespace cqcount {

Status LabeledTree::Validate() const {
  const int n = size();
  if (n == 0) return Status::InvalidArgument("empty tree");
  if (root < 0 || root >= n) return Status::InvalidArgument("bad root");
  std::vector<int> indegree(n, 0);
  for (const Node& node : nodes) {
    if (node.children.size() > 2) {
      return Status::InvalidArgument("node with more than two children");
    }
    for (int c : node.children) {
      if (c < 0 || c >= n) return Status::InvalidArgument("bad child index");
      ++indegree[c];
    }
  }
  for (int i = 0; i < n; ++i) {
    if (indegree[i] != (i == root ? 0 : 1)) {
      return Status::InvalidArgument("not a tree");
    }
  }
  return Status::Ok();
}

uint64_t TreeAutomaton::NumTransitions() const {
  uint64_t count = 0;
  for (const auto& row : leaf_) {
    count += static_cast<uint64_t>(std::count(row.begin(), row.end(), true));
  }
  for (const auto& targets : unary_) count += targets.size();
  for (const auto& targets : binary_) count += targets.size();
  return count;
}

std::vector<bool> TreeAutomaton::RootStates(const LabeledTree& tree) const {
  const int n = tree.size();
  std::vector<std::vector<bool>> states(n);
  // Post-order: children before parents.
  std::vector<int> order;
  order.reserve(n);
  std::vector<int> stack = {tree.root};
  while (!stack.empty()) {
    int node = stack.back();
    stack.pop_back();
    order.push_back(node);
    for (int c : tree.nodes[node].children) stack.push_back(c);
  }
  std::reverse(order.begin(), order.end());

  for (int node : order) {
    const auto& children = tree.nodes[node].children;
    const int label = tree.nodes[node].label;
    std::vector<bool> possible(num_states_, false);
    if (children.empty()) {
      for (int q = 0; q < num_states_; ++q) possible[q] = leaf_[q][label];
    } else if (children.size() == 1) {
      const auto& child_states = states[children[0]];
      for (int q = 0; q < num_states_; ++q) {
        for (int target : UnaryTargets(q, label)) {
          if (child_states[target]) {
            possible[q] = true;
            break;
          }
        }
      }
    } else {
      const auto& left_states = states[children[0]];
      const auto& right_states = states[children[1]];
      for (int q = 0; q < num_states_; ++q) {
        for (const auto& [left, right] : BinaryTargets(q, label)) {
          if (left_states[left] && right_states[right]) {
            possible[q] = true;
            break;
          }
        }
      }
    }
    states[node] = std::move(possible);
  }
  return states[tree.root];
}

bool TreeAutomaton::Accepts(const LabeledTree& tree) const {
  return RootStates(tree)[initial_state_];
}

}  // namespace cqcount
