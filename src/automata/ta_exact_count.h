// Exact counting for tree automata (#TA ground truths).
//
// Exact #TA is #P-hard in general (that is why ACJR's FPRAS exists), but
// two exponential/special-case exact counters are invaluable for testing:
//  - CountRunsDp: counts accepted (tree, labelling, run) triples, which
//    equals |L_N(A)| exactly when the automaton is unambiguous.
//  - CountAcceptedBySubsets: counts accepted (tree, labelling) pairs via
//    the subset construction (exponential in |S|).
//  - CountAcceptedByEnumeration: brute-force over all of Trees2[Sigma]
//    (tiny N and Sigma only).
#ifndef CQCOUNT_AUTOMATA_TA_EXACT_COUNT_H_
#define CQCOUNT_AUTOMATA_TA_EXACT_COUNT_H_

#include <cstdint>

#include "automata/tree_automaton.h"
#include "util/status.h"

namespace cqcount {

/// Number of accepted (tree, labelling, run) triples with |V(T)| = n.
double CountRunsDp(const TreeAutomaton& ta, int n);

/// |L_n(A)| exactly via the subset construction; exponential in the state
/// count, so it refuses automata with more than `max_states` states.
StatusOr<double> CountAcceptedBySubsets(const TreeAutomaton& ta, int n,
                                        int max_states = 24);

/// |L_n(A)| by enumerating every tree shape and labelling; requires
/// Catalan(n) * |Sigma|^n to stay under `max_inputs`.
StatusOr<uint64_t> CountAcceptedByEnumeration(const TreeAutomaton& ta, int n,
                                              uint64_t max_inputs = 5000000);

}  // namespace cqcount

#endif  // CQCOUNT_AUTOMATA_TA_EXACT_COUNT_H_
