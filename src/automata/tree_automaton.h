// Tree automata over binary labelled trees (Definitions 49 and 50).
//
// A (nondeterministic, top-down) tree automaton A = (S, Sigma, Delta, s0)
// runs over pairs (T, psi) where T is a rooted tree with at most two
// (ordered) children per node and psi labels each node. A accepts when
// some run assigns s0 to the root and a Delta-consistent state everywhere.
#ifndef CQCOUNT_AUTOMATA_TREE_AUTOMATON_H_
#define CQCOUNT_AUTOMATA_TREE_AUTOMATON_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace cqcount {

/// A labelled binary tree (an element of Trees2[Sigma], Definition 49).
struct LabeledTree {
  struct Node {
    /// 0, 1 or 2 children (ordered left-to-right).
    std::vector<int> children;
    /// Label id in [0, num_labels).
    int label = 0;
  };
  std::vector<Node> nodes;
  int root = 0;

  int size() const { return static_cast<int>(nodes.size()); }

  /// Tree well-formedness (<= 2 children, single root, connectivity).
  Status Validate() const;
};

/// A nondeterministic tree automaton with dense state and label ids.
class TreeAutomaton {
 public:
  TreeAutomaton(int num_states, int num_labels, int initial_state)
      : num_states_(num_states),
        num_labels_(num_labels),
        initial_state_(initial_state),
        leaf_(num_states, std::vector<bool>(num_labels, false)),
        unary_(num_states * num_labels),
        binary_(num_states * num_labels) {}

  int num_states() const { return num_states_; }
  int num_labels() const { return num_labels_; }
  int initial_state() const { return initial_state_; }

  /// Adds (state, label) -> {} to Delta.
  void AddLeafTransition(int state, int label) {
    leaf_[state][label] = true;
  }
  /// Adds (state, label) -> child to Delta.
  void AddUnaryTransition(int state, int label, int child) {
    unary_[Key(state, label)].push_back(child);
  }
  /// Adds (state, label) -> (left, right) to Delta.
  void AddBinaryTransition(int state, int label, int left, int right) {
    binary_[Key(state, label)].push_back({left, right});
  }

  bool HasLeafTransition(int state, int label) const {
    return leaf_[state][label];
  }
  const std::vector<int>& UnaryTargets(int state, int label) const {
    return unary_[Key(state, label)];
  }
  const std::vector<std::pair<int, int>>& BinaryTargets(int state,
                                                        int label) const {
    return binary_[Key(state, label)];
  }

  /// Total number of transitions.
  uint64_t NumTransitions() const;

  /// Acceptance (Definition 50) by the bottom-up possible-state DP.
  bool Accepts(const LabeledTree& tree) const;

  /// The set of states q such that a run of the subtree exists with the
  /// root mapped to q (the root entry of the bottom-up DP).
  std::vector<bool> RootStates(const LabeledTree& tree) const;

 private:
  size_t Key(int state, int label) const {
    return static_cast<size_t>(state) * num_labels_ + label;
  }

  int num_states_;
  int num_labels_;
  int initial_state_;
  std::vector<std::vector<bool>> leaf_;
  std::vector<std::vector<int>> unary_;
  std::vector<std::vector<std::pair<int, int>>> binary_;
};

}  // namespace cqcount

#endif  // CQCOUNT_AUTOMATA_TREE_AUTOMATON_H_
