#include "automata/acjr_estimator.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <functional>
#include <unordered_map>

#include "hom/bag_solutions.h"
#include "obs/trace.h"
#include "util/math_util.h"
#include "util/random.h"

namespace cqcount {
namespace {

std::vector<int> PositionsOf(const std::vector<int>& bag,
                             const std::vector<int>& subset) {
  std::vector<int> positions;
  size_t j = 0;
  for (size_t i = 0; i < bag.size(); ++i) {
    while (j < subset.size() && subset[j] < bag[i]) ++j;
    if (j < subset.size() && subset[j] == bag[i]) {
      positions.push_back(static_cast<int>(i));
    }
  }
  return positions;
}

std::vector<int> SortedUnion(const std::vector<int>& a,
                             const std::vector<int>& b) {
  std::vector<int> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

// Fan a node's state loop out only past this many states (below it the
// lane bookkeeping costs more than the work).
constexpr size_t kMinStatesForFanout = 4;

class AcjrEngine {
 public:
  AcjrEngine(const Query& q, const Database& db,
             const NiceTreeDecomposition& ntd, const AcjrOptions& opts)
      : query_(q), db_(db), ntd_(ntd), opts_(opts) {
    lanes_ = 1;
    if (opts_.pool != nullptr && opts_.intra_threads > 1) {
      lanes_ = opts_.intra_threads;
    }
    scratch_.resize(static_cast<size_t>(lanes_));
    result_.parallel.lanes = lanes_;
  }

  StatusOr<AcjrResult> Run() {
    const int num_nodes = ntd_.num_nodes();
    sols_.resize(num_nodes);
    free_bag_positions_.resize(num_nodes);
    free_vars_.resize(num_nodes);
    estimates_.resize(num_nodes);
    sketches_.resize(num_nodes);
    intro_child_.resize(num_nodes);
    join_children_.resize(num_nodes);
    forget_candidates_.resize(num_nodes);

    // Bag solutions (each canonical, so the relation doubles as its own
    // sorted index via IndexOf) and a census of union states for the
    // per-union error budget.
    uint64_t union_states = 0;
    for (int t = 0; t < num_nodes; ++t) {
      // Node-boundary checkpoint: bag-solution joins dominate memory and
      // time on wide bags, so the governor gets a say between nodes.
      if (opts_.governor != nullptr &&
          opts_.governor->Check() != GovernanceState::kRunning) {
        return opts_.governor->ToStatus("ACJR bag-solution pass");
      }
      const auto& node = ntd_.node(t);
      sols_[t] = ComputeBagSolutions(query_, db_, node.bag, nullptr);
      for (size_t p = 0; p < node.bag.size(); ++p) {
        if (node.bag[p] < query_.num_free()) {
          free_bag_positions_[t].push_back(static_cast<int>(p));
        }
      }
      if (node.kind == NiceNodeKind::kForget &&
          node.var >= query_.num_free()) {
        union_states += sols_[t].size();
      }
    }
    result_.union_estimates = 0;
    result_.exact = union_states == 0;
    // Per-union error budget: relative errors of union estimates compound
    // (roughly additively) along the estimate DAG; one union per
    // existential variable exists on any root-leaf path.
    const int k_exist = std::max(1, query_.num_existential());
    epsilon_node_ = opts_.epsilon / (2.0 * static_cast<double>(k_exist));
    const double delta_node =
        opts_.delta / std::max<uint64_t>(1, union_states);
    z_node_ = std::min(std::sqrt(1.0 / delta_node), 6.0);

    // Bottom-up (children have larger indices). Within a node, states are
    // independent cells keyed by their own derived RNG stream, so the
    // state loops fan across lanes with index-order-independent writes
    // (each cell owns its estimates_/sketches_ slot).
    for (int t = num_nodes - 1; t >= 0; --t) {
      // Node-boundary checkpoint (deterministic unit = one node's state
      // loop); the sketch DP has no salvageable partial answer, so an
      // interruption surfaces the typed cause.
      if (opts_.governor != nullptr &&
          opts_.governor->Check() != GovernanceState::kRunning) {
        return opts_.governor->ToStatus("ACJR estimation");
      }
      ProcessNode(t);
    }
    for (const LaneScratch& scratch : scratch_) {
      result_.membership_tests += scratch.membership_tests;
    }
    result_.union_estimates =
        union_estimates_.load(std::memory_order_relaxed);
    if (!converged_ok_.load(std::memory_order_relaxed)) {
      result_.converged = false;
    }

    // Root: empty bag; a single state when satisfiable.
    if (sols_[0].empty()) {
      result_.estimate = 0.0;
      result_.exact = true;
      result_.lower_bound = result_.upper_bound = result_.estimate;
      return result_;
    }
    result_.estimate = estimates_[0].empty() ? 0.0 : estimates_[0][0];
    if (result_.estimate == 0.0) result_.exact = true;
    result_.lower_bound = result_.upper_bound = result_.estimate;
    return result_;
  }

 private:
  // Per-lane membership-query scratch (CountContaining / Feasible).
  struct LaneScratch {
    std::vector<Value> pinned_value;
    std::vector<bool> pinned_set;
    std::unordered_map<int64_t, bool> memo;
    uint64_t membership_tests = 0;
  };

  // Runs `fn(lane, state)` over all states of one node, fanning across
  // lanes when configured. The work for a state must depend only on the
  // state index (derived RNG streams), never on the lane.
  void ForEachState(size_t states, const std::function<void(int, size_t)>& fn) {
    if (lanes_ > 1 && states >= kMinStatesForFanout) {
      Executor::LaneStats stats =
          opts_.pool->ParallelForLanes(states, lanes_, fn);
      result_.parallel.tasks += states;
      result_.parallel.worker_tasks += stats.worker_ran;
    } else {
      for (size_t i = 0; i < states; ++i) fn(0, i);
    }
  }

  // The derived stream for one (node, state) cell.
  Rng CellRng(int t, size_t i) const {
    return Rng(DeriveSeed(opts_.seed, {static_cast<uint64_t>(t),
                                       static_cast<uint64_t>(i)}));
  }

  void ProcessNode(int t) {
    const auto& node = ntd_.node(t);
    const size_t states = sols_[t].size();
    estimates_[t].assign(states, 0.0);
    // Dead states keep this placeholder; live states are overwritten with
    // a sketch of the node's free-variable width by the handlers below.
    sketches_[t].assign(states, FlatTuples());
    switch (node.kind) {
      case NiceNodeKind::kLeaf: {
        free_vars_[t] = {};
        for (size_t i = 0; i < states; ++i) {
          estimates_[t][i] = 1.0;
          sketches_[t][i] = FlatTuples(0);
          sketches_[t][i].AppendRow();  // The empty free assignment.
        }
        break;
      }
      case NiceNodeKind::kIntroduce:
        ProcessIntroduce(t);
        break;
      case NiceNodeKind::kForget:
        ProcessForget(t);
        break;
      case NiceNodeKind::kJoin:
        ProcessJoin(t);
        break;
    }
  }

  void ProcessIntroduce(int t) {
    const auto& node = ntd_.node(t);
    const int c = node.children[0];
    const bool var_free = node.var < query_.num_free();
    free_vars_[t] = var_free ? SortedUnion(free_vars_[c], {node.var})
                             : free_vars_[c];
    const std::vector<int> child_positions =
        PositionsOf(node.bag, ntd_.node(c).bag);
    // Insert position of the introduced variable within free_vars_[t].
    int insert_at = -1;
    if (var_free) {
      insert_at = static_cast<int>(
          std::lower_bound(free_vars_[t].begin(), free_vars_[t].end(),
                           node.var) -
          free_vars_[t].begin());
    }
    // Position of the introduced variable inside the bag.
    const int var_pos = static_cast<int>(
        std::lower_bound(node.bag.begin(), node.bag.end(), node.var) -
        node.bag.begin());

    const int width = static_cast<int>(free_vars_[t].size());
    intro_child_[t].assign(sols_[t].size(), -1);
    ForEachState(sols_[t].size(), [&](int, size_t i) {
      TupleView alpha = sols_[t][i];
      Tuple proj;
      ProjectInto(alpha, child_positions, proj);
      const ptrdiff_t j = sols_[c].IndexOf(proj.data());
      if (j < 0) return;  // Dead state.
      intro_child_[t][i] = static_cast<int>(j);
      if (estimates_[c][j] <= 0.0) return;
      estimates_[t][i] = estimates_[c][j];
      if (var_free) {
        FlatTuples extended(width);
        extended.reserve(sketches_[c][j].size());
        for (size_t s = 0; s < sketches_[c][j].size(); ++s) {
          TupleView x = sketches_[c][j][s];
          Value* dst = extended.AppendRow();
          for (int k = 0; k < insert_at; ++k) dst[k] = x[k];
          dst[insert_at] = alpha[var_pos];
          for (int k = insert_at; k < width - 1; ++k) dst[k + 1] = x[k];
        }
        sketches_[t][i] = std::move(extended);
      } else {
        sketches_[t][i] = sketches_[c][j];
      }
    });
  }

  void ProcessForget(int t) {
    const auto& node = ntd_.node(t);
    const int c = node.children[0];
    free_vars_[t] = free_vars_[c];
    const bool var_free = node.var < query_.num_free();
    const std::vector<int> parent_positions =
        PositionsOf(ntd_.node(c).bag, node.bag);

    // Group child states by their projection onto B_t (sequential: the
    // grouping is shared input to every state's cell).
    forget_candidates_[t].assign(sols_[t].size(), {});
    Tuple proj;
    for (size_t j = 0; j < sols_[c].size(); ++j) {
      if (estimates_[c][j] <= 0.0) continue;
      ProjectInto(sols_[c][j], parent_positions, proj);
      const ptrdiff_t i = sols_[t].IndexOf(proj.data());
      if (i < 0) continue;
      forget_candidates_[t][i].push_back(static_cast<int>(j));
    }

    ForEachState(sols_[t].size(), [&](int lane, size_t i) {
      const auto& candidates = forget_candidates_[t][i];
      if (candidates.empty()) return;  // Dead state.
      Rng rng = CellRng(t, i);
      if (var_free || candidates.size() == 1) {
        // Disjoint union (distinct values of a free variable), or a
        // trivial single-branch union: exact sum + mixture sampling.
        double total = 0.0;
        for (int j : candidates) total += estimates_[c][j];
        estimates_[t][i] = total;
        sketches_[t][i] = SampleMixture(c, candidates, total, rng);
      } else {
        // Overlapping union over an existential variable: Karp-Luby.
        EstimateUnion(t, static_cast<int>(i), c, candidates, rng,
                      scratch_[static_cast<size_t>(lane)]);
      }
    });
  }

  void ProcessJoin(int t) {
    const auto& node = ntd_.node(t);
    const int c1 = node.children[0];
    const int c2 = node.children[1];
    free_vars_[t] = SortedUnion(free_vars_[c1], free_vars_[c2]);
    join_children_[t].assign(sols_[t].size(), {-1, -1});
    // Positions of each child's free vars within the union.
    std::vector<int> from1(free_vars_[c1].size());
    std::vector<int> from2(free_vars_[c2].size());
    for (size_t k = 0; k < free_vars_[c1].size(); ++k) {
      from1[k] = static_cast<int>(
          std::lower_bound(free_vars_[t].begin(), free_vars_[t].end(),
                           free_vars_[c1][k]) -
          free_vars_[t].begin());
    }
    for (size_t k = 0; k < free_vars_[c2].size(); ++k) {
      from2[k] = static_cast<int>(
          std::lower_bound(free_vars_[t].begin(), free_vars_[t].end(),
                           free_vars_[c2][k]) -
          free_vars_[t].begin());
    }

    const int width = static_cast<int>(free_vars_[t].size());
    ForEachState(sols_[t].size(), [&](int, size_t i) {
      TupleView alpha = sols_[t][i];
      // Join children share B_t, so alpha indexes both directly.
      const ptrdiff_t j1 = sols_[c1].IndexOf(alpha);
      const ptrdiff_t j2 = sols_[c2].IndexOf(alpha);
      if (j1 < 0 || j2 < 0) return;
      join_children_[t][i] = {static_cast<int>(j1), static_cast<int>(j2)};
      if (estimates_[c1][j1] <= 0.0 || estimates_[c2][j2] <= 0.0) return;
      estimates_[t][i] = estimates_[c1][j1] * estimates_[c2][j2];
      // Product sampling: independent child samples merged over the
      // union of free variables (overlaps agree: both children pin their
      // bag's free variables to alpha).
      Rng rng = CellRng(t, i);
      const FlatTuples& sk1 = sketches_[c1][j1];
      const FlatTuples& sk2 = sketches_[c2][j2];
      const int wanted = opts_.sketch_size;
      FlatTuples merged(width);
      merged.reserve(wanted);
      for (int s = 0; s < wanted; ++s) {
        TupleView x1 = sk1[rng.UniformInt(sk1.size())];
        TupleView x2 = sk2[rng.UniformInt(sk2.size())];
        Value* dst = merged.AppendRow();
        for (size_t k = 0; k < from2.size(); ++k) dst[from2[k]] = x2[k];
        for (size_t k = 0; k < from1.size(); ++k) dst[from1[k]] = x1[k];
      }
      sketches_[t][i] = std::move(merged);
    });
  }

  // Draws `sketch_size` samples from the disjoint mixture of candidate
  // child languages (weights = child estimates).
  FlatTuples SampleMixture(int c, const std::vector<int>& candidates,
                           double total, Rng& rng) {
    FlatTuples sketch(static_cast<int>(free_vars_[c].size()));
    sketch.reserve(opts_.sketch_size);
    for (int s = 0; s < opts_.sketch_size; ++s) {
      double r = rng.UniformDouble() * total;
      int chosen = candidates.back();
      for (int j : candidates) {
        if (r < estimates_[c][j]) {
          chosen = j;
          break;
        }
        r -= estimates_[c][j];
      }
      const FlatTuples& sk = sketches_[c][chosen];
      sketch.PushBack(sk[rng.UniformInt(sk.size())]);
    }
    return sketch;
  }

  // Karp-Luby estimate of |union_j L(c, candidate_j)| for the union state
  // (t, i), plus a rejection-corrected union sketch.
  void EstimateUnion(int t, int i, int c, const std::vector<int>& candidates,
                     Rng& rng, LaneScratch& scratch) {
    union_estimates_.fetch_add(1, std::memory_order_relaxed);
    double total = 0.0;
    for (int j : candidates) total += estimates_[c][j];

    // Draw (j ~ estimates, x ~ sketch_j), weight by 1 / c(x).
    auto draw = [&](int* out_j) -> TupleView {
      double r = rng.UniformDouble() * total;
      int chosen = candidates.back();
      for (int j : candidates) {
        if (r < estimates_[c][j]) {
          chosen = j;
          break;
        }
        r -= estimates_[c][j];
      }
      *out_j = chosen;
      const FlatTuples& sk = sketches_[c][chosen];
      return sk[rng.UniformInt(sk.size())];
    };

    MeanVarAccumulator acc;
    const int min_samples = 16;
    for (int s = 0; s < opts_.max_union_samples; ++s) {
      int j = -1;
      const TupleView x = draw(&j);
      const int count = CountContaining(c, candidates, x, scratch);
      assert(count >= 1);
      acc.Add(1.0 / static_cast<double>(count));
      if (s + 1 >= min_samples) {
        const double half_width = z_node_ * std::sqrt(acc.mean_variance());
        if (half_width <= epsilon_node_ * std::max(acc.mean(), 1e-12)) break;
      }
      if (s + 1 == opts_.max_union_samples) {
        converged_ok_.store(false, std::memory_order_relaxed);
      }
    }
    estimates_[t][i] = total * acc.mean();

    // Union sketch by rejection (accept x with probability 1/c(x)).
    FlatTuples sketch(static_cast<int>(free_vars_[c].size()));
    sketch.reserve(opts_.sketch_size);
    for (int s = 0; s < opts_.sketch_size; ++s) {
      bool accepted = false;
      for (int retry = 0; retry < opts_.max_rejection_retries; ++retry) {
        int j = -1;
        const TupleView x = draw(&j);
        const int count = CountContaining(c, candidates, x, scratch);
        if (count == 1 || rng.UniformDouble() < 1.0 / count) {
          sketch.PushBack(x);
          accepted = true;
          break;
        }
      }
      if (!accepted) {
        int j = -1;
        sketch.PushBack(draw(&j));  // Accept the next draw (bounded bias).
      }
    }
    sketches_[t][i] = std::move(sketch);
  }

  // c(x) = number of candidate child states whose language contains x.
  int CountContaining(int c, const std::vector<int>& candidates, TupleView x,
                      LaneScratch& scratch) {
    // Pin the free variables of the child subtree to x.
    scratch.pinned_value.assign(query_.num_free(), 0);
    scratch.pinned_set.assign(query_.num_free(), false);
    const auto& fv = free_vars_[c];
    assert(fv.size() == x.size());
    for (size_t k = 0; k < fv.size(); ++k) {
      scratch.pinned_value[fv[k]] = x[k];
      scratch.pinned_set[fv[k]] = true;
    }
    scratch.memo.clear();
    int count = 0;
    for (int j : candidates) {
      if (Feasible(c, j, scratch)) ++count;
    }
    return count;
  }

  // Top-down feasibility: does some consistent family below (t, state j)
  // produce labels matching the pinned assignment? Reads only ancestor-
  // completed per-node tables, so concurrent lanes are safe.
  bool Feasible(int t, int j, LaneScratch& scratch) {
    ++scratch.membership_tests;
    const int64_t key = (static_cast<int64_t>(t) << 32) | j;
    auto it = scratch.memo.find(key);
    if (it != scratch.memo.end()) return it->second;
    bool ok = FeasibleUncached(t, j, scratch);
    scratch.memo.emplace(key, ok);
    return ok;
  }

  bool FeasibleUncached(int t, int j, LaneScratch& scratch) {
    if (estimates_[t][j] <= 0.0) return false;  // Dead state.
    const auto& node = ntd_.node(t);
    const TupleView alpha = sols_[t][j];
    // The state's own label must match the pinned free values.
    for (int p : free_bag_positions_[t]) {
      const int var = node.bag[p];
      if (scratch.pinned_set[var] && alpha[p] != scratch.pinned_value[var]) {
        return false;
      }
    }
    switch (node.kind) {
      case NiceNodeKind::kLeaf:
        return true;
      case NiceNodeKind::kIntroduce: {
        const int cj = intro_child_[t][j];
        return cj >= 0 && Feasible(node.children[0], cj, scratch);
      }
      case NiceNodeKind::kForget: {
        for (int cj : forget_candidates_[t][j]) {
          if (Feasible(node.children[0], cj, scratch)) return true;
        }
        return false;
      }
      case NiceNodeKind::kJoin: {
        const auto [j1, j2] = join_children_[t][j];
        return j1 >= 0 && j2 >= 0 &&
               Feasible(node.children[0], j1, scratch) &&
               Feasible(node.children[1], j2, scratch);
      }
    }
    return false;
  }

  const Query& query_;
  const Database& db_;
  const NiceTreeDecomposition& ntd_;
  AcjrOptions opts_;
  AcjrResult result_;
  int lanes_ = 1;

  double epsilon_node_ = 0.1;
  double z_node_ = 2.0;

  std::vector<Relation> sols_;
  std::vector<std::vector<int>> free_bag_positions_;
  std::vector<std::vector<int>> free_vars_;
  std::vector<std::vector<double>> estimates_;
  // sketches_[t][i]: sampled free-variable assignments (flat rows of
  // width |free_vars_[t]|) for state i of node t.
  std::vector<std::vector<FlatTuples>> sketches_;
  std::vector<std::vector<int>> intro_child_;
  std::vector<std::vector<std::pair<int, int>>> join_children_;
  std::vector<std::vector<std::vector<int>>> forget_candidates_;

  // Per-lane membership-query scratch and lane-shared counters.
  std::vector<LaneScratch> scratch_;
  std::atomic<uint64_t> union_estimates_{0};
  std::atomic<bool> converged_ok_{true};
};

}  // namespace

StatusOr<AcjrResult> AcjrCountAnswers(const Query& q, const Database& db,
                                      const NiceTreeDecomposition& ntd,
                                      const AcjrOptions& opts) {
  if (q.Kind() != QueryKind::kCq) {
    return Status::InvalidArgument(
        "Theorem 16 applies to pure conjunctive queries");
  }
  Status s = q.CheckAgainstDatabase(db);
  if (!s.ok()) return s;
  if (opts.sketch_size < 1) {
    return Status::InvalidArgument(
        "sketch_size must be positive");
  }
  obs::Span span("acjr.estimate");
  AcjrEngine engine(q, db, ntd, opts);
  return engine.Run();
}

}  // namespace cqcount
