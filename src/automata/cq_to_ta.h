// The Lemma 52 reduction: #CQ -> #TA, parsimoniously.
//
// Given a CQ phi, a database D and a nice tree decomposition (T, B) of
// H(phi), builds the tree automaton A whose N-slice L_N(A) (N = |V(T)|)
// is in bijection with Ans(phi, D):
//   states  = {(t, alpha) : alpha in Sol(phi, D, B_t)},
//   labels  = {(t, beta)  : beta  in proj(Sol_t, free(phi))},
//   transitions as in the proof of Lemma 52 (join / introduce / forget /
//   leaf), initial state (root, empty assignment).
#ifndef CQCOUNT_AUTOMATA_CQ_TO_TA_H_
#define CQCOUNT_AUTOMATA_CQ_TO_TA_H_

#include <vector>

#include "automata/tree_automaton.h"
#include "decomposition/nice_decomposition.h"
#include "query/query.h"
#include "relational/structure.h"
#include "util/status.h"

namespace cqcount {

/// Output of the Lemma 52 construction.
struct CqAutomaton {
  TreeAutomaton automaton;
  /// The decomposition tree shape (labels default-initialised); every
  /// accepted input has exactly this shape.
  LabeledTree tree_shape;
  /// |V(T)|: the slice whose count equals |Ans(phi, D)|.
  int n = 0;
  /// True when some Sol_t is empty, i.e. |Ans| = 0 and the automaton has
  /// no accepting run (the initial state may then be a dummy).
  bool trivially_zero = false;
  /// Bookkeeping: state -> decomposition node, label -> node.
  std::vector<int> state_node;
  std::vector<int> label_node;
};

/// Builds the counting automaton. The query must be a pure CQ (Theorem 16
/// scope: no disequalities, no negated atoms) valid for `db`, and `ntd`
/// must be a valid nice tree decomposition of H(phi).
StatusOr<CqAutomaton> BuildCountingAutomaton(const Query& q,
                                             const Database& db,
                                             const NiceTreeDecomposition& ntd);

}  // namespace cqcount

#endif  // CQCOUNT_AUTOMATA_CQ_TO_TA_H_
