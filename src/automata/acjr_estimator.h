// Sketch-based FPRAS for counting answers of CQs with bounded fractional
// hypertreewidth (Theorem 16), specialised from the Arenas-Croquevielle-
// Jayaram-Riveros #TA FPRAS (Lemma 51) to the Lemma 52 automata.
//
// Structure (DESIGN.md section 4.3): every accepted input of the Lemma 52
// automaton has the decomposition tree's shape, and a run determines its
// labels, so |L_N(A)| = number of distinct projections of consistent
// bag-solution families. Bottom-up over the nice decomposition, each
// (node, bag solution) carries a size estimate N and a bounded uniform
// sample sketch of its partial-answer language:
//   - leaf:       N = 1 (the empty labelling),
//   - introduce:  copy from the projected child state (free introductions
//                 extend every sample deterministically),
//   - forget of a FREE variable: disjoint union (exact sum; sampling by
//                 mixture),
//   - forget of an EXISTENTIAL variable: overlapping union, estimated by
//                 Karp-Luby with poly-time membership tests (a top-down
//                 feasibility DP) and rejection-corrected sampling,
//   - join:       product (exact; samples merge componentwise).
// With no existential variables there are no unions and the count is
// exact. Sketches are bounded (`sketch_size`), so per-union accuracy is
// validated empirically; options expose the scaling knobs.
#ifndef CQCOUNT_AUTOMATA_ACJR_ESTIMATOR_H_
#define CQCOUNT_AUTOMATA_ACJR_ESTIMATOR_H_

#include <cstdint>

#include "decomposition/nice_decomposition.h"
#include "query/query.h"
#include "relational/structure.h"
#include "util/cancel.h"
#include "util/estimate_outcome.h"
#include "util/executor.h"
#include "util/status.h"

namespace cqcount {

/// Tuning for the estimator.
struct AcjrOptions {
  /// Target relative error.
  double epsilon = 0.15;
  /// Target failure probability.
  double delta = 0.25;
  /// Samples kept per (node, state) sketch.
  int sketch_size = 64;
  /// Cap on Karp-Luby draws per union estimate.
  int max_union_samples = 4096;
  /// Rejection-retry cap when sampling a union near-uniformly.
  int max_rejection_retries = 32;
  /// Seed for all sampling. Every (node, state) cell draws from its own
  /// derived stream Rng(DeriveSeed(seed, {node, state})), so the per-node
  /// state loops may fan across worker lanes with bit-identical results
  /// at any thread count.
  uint64_t seed = 0xACE5ULL;
  /// Worker pool for intra-estimate parallelism (not owned; null =
  /// inline) and the lane count the state loops partition across.
  Executor* pool = nullptr;
  int intra_threads = 1;
  /// Cooperative governance (not owned; null = ungoverned). Polled at node
  /// boundaries of the bottom-up pass; the sketch DP has no salvageable
  /// intermediate answer, so an interruption yields the typed
  /// CANCELLED/DEADLINE_EXCEEDED status (never a partial estimate).
  const ResourceGovernor* governor = nullptr;
};

/// Estimation result (estimate/exact/converged from EstimateOutcome; exact
/// means no union estimation was needed — quantifier-free query).
struct AcjrResult : EstimateOutcome {
  /// Membership feasibility DP invocations.
  uint64_t membership_tests = 0;
  /// Number of (forget-existential node, state) union estimates performed.
  uint64_t union_estimates = 0;
  /// Intra-estimate parallelism observability.
  ParallelStats parallel;
};

/// Runs the estimator for a pure CQ over a valid nice tree decomposition
/// of H(phi).
StatusOr<AcjrResult> AcjrCountAnswers(const Query& q, const Database& db,
                                      const NiceTreeDecomposition& ntd,
                                      const AcjrOptions& opts);

}  // namespace cqcount

#endif  // CQCOUNT_AUTOMATA_ACJR_ESTIMATOR_H_
