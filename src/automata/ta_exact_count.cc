#include "automata/ta_exact_count.h"

#include <functional>
#include <unordered_map>
#include <vector>

namespace cqcount {

double CountRunsDp(const TreeAutomaton& ta, int n) {
  const int num_states = ta.num_states();
  const int num_labels = ta.num_labels();
  // runs[m][q] = number of accepted (tree, labelling, run) triples for a
  // subtree of m nodes whose root is assigned state q.
  std::vector<std::vector<double>> runs(
      n + 1, std::vector<double>(num_states, 0.0));
  for (int m = 1; m <= n; ++m) {
    for (int q = 0; q < num_states; ++q) {
      double total = 0.0;
      for (int a = 0; a < num_labels; ++a) {
        if (m == 1 && ta.HasLeafTransition(q, a)) total += 1.0;
        if (m >= 2) {
          for (int child : ta.UnaryTargets(q, a)) {
            total += runs[m - 1][child];
          }
        }
        if (m >= 3) {
          for (const auto& [left, right] : ta.BinaryTargets(q, a)) {
            for (int m1 = 1; m1 <= m - 2; ++m1) {
              total += runs[m1][left] * runs[m - 1 - m1][right];
            }
          }
        }
      }
      runs[m][q] = total;
    }
  }
  return runs[n][ta.initial_state()];
}

StatusOr<double> CountAcceptedBySubsets(const TreeAutomaton& ta, int n,
                                        int max_states) {
  const int num_states = ta.num_states();
  const int num_labels = ta.num_labels();
  if (num_states > max_states || num_states > 30) {
    return Status::ResourceExhausted(
        "too many states for the subset-construction DP");
  }
  using Mask = uint32_t;
  using Level = std::unordered_map<Mask, double>;

  // level[m][S] = number of (tree, labelling) pairs with m nodes whose
  // bottom-up possible-state set at the root is exactly S (empty sets are
  // pruned: they can never become accepting).
  std::vector<Level> level(n + 1);
  for (int a = 0; a < num_labels; ++a) {
    Mask mask = 0;
    for (int q = 0; q < num_states; ++q) {
      if (ta.HasLeafTransition(q, a)) mask |= Mask{1} << q;
    }
    if (mask != 0) level[1][mask] += 1.0;
  }
  for (int m = 2; m <= n; ++m) {
    for (int a = 0; a < num_labels; ++a) {
      // Unary parent over child sets of size m-1.
      for (const auto& [child_mask, count] : level[m - 1]) {
        Mask mask = 0;
        for (int q = 0; q < num_states; ++q) {
          for (int target : ta.UnaryTargets(q, a)) {
            if (child_mask & (Mask{1} << target)) {
              mask |= Mask{1} << q;
              break;
            }
          }
        }
        if (mask != 0) level[m][mask] += count;
      }
      // Binary parent over (m1, m-1-m1) splits.
      for (int m1 = 1; m1 <= m - 2; ++m1) {
        for (const auto& [left_mask, left_count] : level[m1]) {
          for (const auto& [right_mask, right_count] : level[m - 1 - m1]) {
            Mask mask = 0;
            for (int q = 0; q < num_states; ++q) {
              for (const auto& [left, right] : ta.BinaryTargets(q, a)) {
                if ((left_mask & (Mask{1} << left)) &&
                    (right_mask & (Mask{1} << right))) {
                  mask |= Mask{1} << q;
                  break;
                }
              }
            }
            if (mask != 0) level[m][mask] += left_count * right_count;
          }
        }
      }
    }
  }
  double accepted = 0.0;
  const Mask initial = Mask{1} << ta.initial_state();
  for (const auto& [mask, count] : level[n]) {
    if (mask & initial) accepted += count;
  }
  return accepted;
}

StatusOr<uint64_t> CountAcceptedByEnumeration(const TreeAutomaton& ta, int n,
                                              uint64_t max_inputs) {
  // Enumerate all tree shapes of n nodes (each node 0/1/2 ordered
  // children), then all labellings, and test acceptance.
  std::vector<LabeledTree> shapes;
  std::function<std::vector<LabeledTree>(int)> build =
      [&](int m) -> std::vector<LabeledTree> {
    std::vector<LabeledTree> result;
    if (m == 0) return result;
    if (m == 1) {
      LabeledTree t;
      t.nodes.resize(1);
      result.push_back(std::move(t));
      return result;
    }
    // Root with one child.
    for (LabeledTree sub : build(m - 1)) {
      LabeledTree t;
      t.nodes.resize(1);
      const int offset = 1;
      for (const auto& node : sub.nodes) {
        LabeledTree::Node copy = node;
        for (int& c : copy.children) c += offset;
        t.nodes.push_back(copy);
      }
      t.nodes[0].children = {offset + sub.root};
      result.push_back(std::move(t));
    }
    // Root with two children.
    for (int m1 = 1; m1 <= m - 2; ++m1) {
      for (const LabeledTree& left : build(m1)) {
        for (const LabeledTree& right : build(m - 1 - m1)) {
          LabeledTree t;
          t.nodes.resize(1);
          const int left_offset = 1;
          for (const auto& node : left.nodes) {
            LabeledTree::Node copy = node;
            for (int& c : copy.children) c += left_offset;
            t.nodes.push_back(copy);
          }
          const int right_offset = 1 + left.size();
          for (const auto& node : right.nodes) {
            LabeledTree::Node copy = node;
            for (int& c : copy.children) c += right_offset;
            t.nodes.push_back(copy);
          }
          t.nodes[0].children = {left_offset + left.root,
                                 right_offset + right.root};
          result.push_back(std::move(t));
        }
      }
    }
    return result;
  };
  shapes = build(n);

  // Estimate the total input count up front.
  double labellings = 1.0;
  for (int i = 0; i < n; ++i) labellings *= ta.num_labels();
  if (static_cast<double>(shapes.size()) * labellings >
      static_cast<double>(max_inputs)) {
    return Status::ResourceExhausted("too many inputs to enumerate");
  }

  uint64_t accepted = 0;
  for (LabeledTree& tree : shapes) {
    std::function<void(int)> assign = [&](int index) {
      if (index == n) {
        if (ta.Accepts(tree)) ++accepted;
        return;
      }
      for (int a = 0; a < ta.num_labels(); ++a) {
        tree.nodes[index].label = a;
        assign(index + 1);
      }
    };
    assign(0);
  }
  return accepted;
}

}  // namespace cqcount
