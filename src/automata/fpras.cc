#include "automata/fpras.h"

#include "decomposition/nice_decomposition.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace cqcount {
namespace {

// Fed once per FPRAS invocation (bulk adds; the estimator loops never
// touch the registry).
struct AcjrMetrics {
  obs::Counter& invocations = obs::MetricRegistry::Global().GetCounter(
      "acjr.invocations", "Automata-FPRAS pipeline executions");
  obs::Counter& membership_tests = obs::MetricRegistry::Global().GetCounter(
      "acjr.membership_tests",
      "Tree-automaton membership tests across all union estimates");
  obs::Counter& union_estimates = obs::MetricRegistry::Global().GetCounter(
      "acjr.union_estimates",
      "Karp-Luby union estimates inside the ACJR estimator");

  static AcjrMetrics& Get() {
    static AcjrMetrics* metrics = new AcjrMetrics();
    return *metrics;
  }
};

// Eager registration at load: every metric name appears in `stats` JSON
// (schema validation) even on code paths that never touch it.
[[maybe_unused]] const AcjrMetrics& kAcjrMetricsInit = AcjrMetrics::Get();

}  // namespace

StatusOr<FprasResult> FprasCountCq(const Query& q, const Database& db,
                                   const FprasOptions& opts) {
  obs::Span fpras_span("acjr.fpras");
  Status s = q.Validate();
  if (!s.ok()) return s;
  if (q.Kind() != QueryKind::kCq) {
    return Status::InvalidArgument(
        "FprasCountCq requires a pure CQ (no disequalities or negations); "
        "use ApproxCountAnswers for DCQs/ECQs");
  }
  s = q.CheckAgainstDatabase(db);
  if (!s.ok()) return s;

  Hypergraph h = q.BuildHypergraph();
  FWidthResult width =
      opts.precomputed_decomposition
          ? *opts.precomputed_decomposition
          : ComputeDecomposition(h, opts.objective,
                                 opts.exact_decomposition_limit);
  NiceTreeDecomposition nice =
      NiceTreeDecomposition::FromTreeDecomposition(h, width.decomposition);

  FprasResult result;
  result.fhw = FhwOfDecomposition(h, nice.ToTreeDecomposition());
  result.decomposition_nodes = nice.num_nodes();
  CQLOG(kInfo) << "FPRAS: nice decomposition with " << nice.num_nodes()
               << " nodes, fhw " << result.fhw;

  auto estimate = AcjrCountAnswers(q, db, nice, opts.acjr);
  if (!estimate.ok()) return estimate.status();
  result.estimate = estimate->estimate;
  result.exact = estimate->exact;
  result.converged = estimate->converged;
  result.partial = estimate->partial;
  result.lower_bound = estimate->lower_bound;
  result.upper_bound = estimate->upper_bound;
  result.membership_tests = estimate->membership_tests;
  result.parallel = estimate->parallel;
  AcjrMetrics& metrics = AcjrMetrics::Get();
  metrics.invocations.Increment();
  metrics.membership_tests.Add(estimate->membership_tests);
  metrics.union_estimates.Add(estimate->union_estimates);
  return result;
}

}  // namespace cqcount
