#include "automata/fpras.h"

#include "decomposition/nice_decomposition.h"
#include "util/logging.h"

namespace cqcount {

StatusOr<FprasResult> FprasCountCq(const Query& q, const Database& db,
                                   const FprasOptions& opts) {
  Status s = q.Validate();
  if (!s.ok()) return s;
  if (q.Kind() != QueryKind::kCq) {
    return Status::InvalidArgument(
        "FprasCountCq requires a pure CQ (no disequalities or negations); "
        "use ApproxCountAnswers for DCQs/ECQs");
  }
  s = q.CheckAgainstDatabase(db);
  if (!s.ok()) return s;

  Hypergraph h = q.BuildHypergraph();
  FWidthResult width =
      opts.precomputed_decomposition
          ? *opts.precomputed_decomposition
          : ComputeDecomposition(h, opts.objective,
                                 opts.exact_decomposition_limit);
  NiceTreeDecomposition nice =
      NiceTreeDecomposition::FromTreeDecomposition(h, width.decomposition);

  FprasResult result;
  result.fhw = FhwOfDecomposition(h, nice.ToTreeDecomposition());
  result.decomposition_nodes = nice.num_nodes();
  CQLOG(kInfo) << "FPRAS: nice decomposition with " << nice.num_nodes()
               << " nodes, fhw " << result.fhw;

  auto estimate = AcjrCountAnswers(q, db, nice, opts.acjr);
  if (!estimate.ok()) return estimate.status();
  result.estimate = estimate->estimate;
  result.exact = estimate->exact;
  result.converged = estimate->converged;
  result.membership_tests = estimate->membership_tests;
  result.parallel = estimate->parallel;
  return result;
}

}  // namespace cqcount
