// FPRAS front end for #CQ with bounded fractional hypertreewidth
// (Theorem 16).
//
// Pipeline: nice tree decomposition with small fhw (Lemma 43) -> bag
// solutions (Lemma 48) -> counting automaton (Lemma 52) semantics ->
// ACJR-style sketch estimation (Lemma 51 stand-in, DESIGN.md 4.3).
#ifndef CQCOUNT_AUTOMATA_FPRAS_H_
#define CQCOUNT_AUTOMATA_FPRAS_H_

#include "automata/acjr_estimator.h"
#include "decomposition/width_measures.h"
#include "query/query.h"
#include "relational/structure.h"
#include "util/status.h"

namespace cqcount {

/// Options for FprasCountCq.
struct FprasOptions {
  /// Estimator tuning (epsilon / delta live here).
  AcjrOptions acjr;
  /// Decomposition objective; fractional hypertreewidth is the Theorem 16
  /// regime, treewidth reproduces the ACJR (hypertreewidth) scope.
  WidthObjective objective = WidthObjective::kFractionalHypertreewidth;
  /// Exact-width search limit (falls back to min-fill above it).
  int exact_decomposition_limit = 14;
  /// Precomputed decomposition of H(phi): when non-null the pipeline skips
  /// its own ComputeDecomposition call (the engine's warm plan-cache path).
  /// Must be valid for the query's hypergraph and outlive the call.
  const FWidthResult* precomputed_decomposition = nullptr;
};

/// Result of the FPRAS (estimate/exact/converged from the shared
/// EstimateOutcome contract; exact means no sampling was involved —
/// quantifier-free or trivially empty).
struct FprasResult : EstimateOutcome {
  /// Fractional hypertreewidth of the decomposition actually used.
  double fhw = 0.0;
  /// Nodes of the nice decomposition.
  int decomposition_nodes = 0;
  uint64_t membership_tests = 0;
  /// Intra-estimate parallelism observability.
  ParallelStats parallel;
};

/// Approximates |Ans(phi, D)| for a pure CQ in fully polynomial time for
/// bounded-fhw query classes.
StatusOr<FprasResult> FprasCountCq(const Query& q, const Database& db,
                                   const FprasOptions& opts);

}  // namespace cqcount

#endif  // CQCOUNT_AUTOMATA_FPRAS_H_
