#include "automata/cq_to_ta.h"

#include <algorithm>
#include <unordered_map>

#include "hom/bag_solutions.h"
#include "util/hash.h"

namespace cqcount {
namespace {

// Positions (indices into `bag`) of elements also present in `subset`;
// both sorted.
std::vector<int> PositionsOf(const std::vector<int>& bag,
                             const std::vector<int>& subset) {
  std::vector<int> positions;
  size_t j = 0;
  for (size_t i = 0; i < bag.size(); ++i) {
    while (j < subset.size() && subset[j] < bag[i]) ++j;
    if (j < subset.size() && subset[j] == bag[i]) {
      positions.push_back(static_cast<int>(i));
    }
  }
  return positions;
}

using LabelIndex = std::unordered_map<Tuple, int, VectorHash<Value>>;

}  // namespace

StatusOr<CqAutomaton> BuildCountingAutomaton(
    const Query& q, const Database& db, const NiceTreeDecomposition& ntd) {
  if (q.Kind() != QueryKind::kCq) {
    return Status::InvalidArgument(
        "Lemma 52 applies to pure conjunctive queries");
  }
  Status s = q.CheckAgainstDatabase(db);
  if (!s.ok()) return s;

  const int num_nodes = ntd.num_nodes();
  const int num_free = q.num_free();

  // Per node: bag solutions (canonical, so IndexOf doubles as the state
  // index), their free projections, and label-id maps.
  std::vector<Relation> sols(num_nodes);
  std::vector<std::vector<int>> free_positions(num_nodes);
  std::vector<LabelIndex> label_index(num_nodes);  // projection -> label id.
  std::vector<int> state_offset(num_nodes, 0);

  bool trivially_zero = false;
  int num_states = 0;
  int num_labels = 0;
  std::vector<int> state_node;
  std::vector<int> label_node;
  Tuple scratch;
  for (int t = 0; t < num_nodes; ++t) {
    const auto& bag = ntd.node(t).bag;
    sols[t] = ComputeBagSolutions(q, db, bag, nullptr);
    if (sols[t].empty()) trivially_zero = true;
    state_offset[t] = num_states;
    num_states += static_cast<int>(sols[t].size());
    for (size_t i = 0; i < sols[t].size(); ++i) state_node.push_back(t);
    // Free-variable positions inside the bag.
    for (size_t p = 0; p < bag.size(); ++p) {
      if (bag[p] < num_free) {
        free_positions[t].push_back(static_cast<int>(p));
      }
    }
    for (TupleView alpha : sols[t]) {
      ProjectInto(alpha, free_positions[t], scratch);
      auto [it, inserted] = label_index[t].emplace(scratch, num_labels);
      if (inserted) {
        label_node.push_back(t);
        ++num_labels;
      }
    }
  }
  if (num_states == 0 || num_labels == 0) {
    // Degenerate: no solutions anywhere. Produce a one-state automaton
    // with no transitions.
    CqAutomaton result{TreeAutomaton(1, 1, 0), LabeledTree{}, num_nodes,
                       true, {0}, {0}};
    result.tree_shape.nodes.resize(num_nodes);
    for (int t = 0; t < num_nodes; ++t) {
      result.tree_shape.nodes[t].children = ntd.node(t).children;
    }
    return result;
  }

  TreeAutomaton automaton(num_states, num_labels, state_offset[0]);
  auto state_id = [&](int t, int sol) { return state_offset[t] + sol; };
  Tuple label_scratch;  // Dedicated: `scratch` is live across label_of calls.
  auto label_of = [&](int t, int sol) {
    ProjectInto(sols[t][sol], free_positions[t], label_scratch);
    return label_index[t].at(label_scratch);
  };

  for (int t = 0; t < num_nodes; ++t) {
    const auto& node = ntd.node(t);
    const Relation& tuples = sols[t];
    switch (node.kind) {
      case NiceNodeKind::kLeaf: {
        // Sol_t = {empty assignment} unless globally infeasible.
        for (size_t i = 0; i < tuples.size(); ++i) {
          automaton.AddLeafTransition(state_id(t, static_cast<int>(i)),
                                      label_of(t, static_cast<int>(i)));
        }
        break;
      }
      case NiceNodeKind::kJoin: {
        const int c1 = node.children[0];
        const int c2 = node.children[1];
        for (size_t i = 0; i < tuples.size(); ++i) {
          // Join children share B_t, so the tuple indexes both directly.
          const ptrdiff_t j1 = sols[c1].IndexOf(tuples[i]);
          const ptrdiff_t j2 = sols[c2].IndexOf(tuples[i]);
          if (j1 < 0 || j2 < 0) continue;  // Dead state.
          automaton.AddBinaryTransition(
              state_id(t, static_cast<int>(i)),
              label_of(t, static_cast<int>(i)),
              state_id(c1, static_cast<int>(j1)),
              state_id(c2, static_cast<int>(j2)));
        }
        break;
      }
      case NiceNodeKind::kIntroduce: {
        // B_t = B_c + {v}: child state is the projection of alpha.
        const int c = node.children[0];
        const std::vector<int> child_positions =
            PositionsOf(node.bag, ntd.node(c).bag);
        for (size_t i = 0; i < tuples.size(); ++i) {
          ProjectInto(tuples[i], child_positions, scratch);
          const ptrdiff_t j = sols[c].IndexOf(scratch.data());
          if (j < 0) continue;
          automaton.AddUnaryTransition(state_id(t, static_cast<int>(i)),
                                       label_of(t, static_cast<int>(i)),
                                       state_id(c, static_cast<int>(j)));
        }
        break;
      }
      case NiceNodeKind::kForget: {
        // B_c = B_t + {v}: one transition per consistent child solution.
        const int c = node.children[0];
        const std::vector<int> parent_positions =
            PositionsOf(ntd.node(c).bag, node.bag);
        for (size_t j = 0; j < sols[c].size(); ++j) {
          ProjectInto(sols[c][j], parent_positions, scratch);
          const ptrdiff_t i = sols[t].IndexOf(scratch.data());
          if (i < 0) continue;
          automaton.AddUnaryTransition(state_id(t, static_cast<int>(i)),
                                       label_of(t, static_cast<int>(i)),
                                       state_id(c, static_cast<int>(j)));
        }
        break;
      }
    }
  }

  CqAutomaton result{std::move(automaton), LabeledTree{}, num_nodes,
                     trivially_zero, std::move(state_node),
                     std::move(label_node)};
  result.tree_shape.nodes.resize(num_nodes);
  for (int t = 0; t < num_nodes; ++t) {
    result.tree_shape.nodes[t].children = ntd.node(t).children;
  }
  result.tree_shape.root = 0;
  return result;
}

}  // namespace cqcount
