#include "automata/cq_to_ta.h"

#include <algorithm>
#include <unordered_map>

#include "hom/bag_solutions.h"
#include "util/hash.h"

namespace cqcount {
namespace {

// Positions (indices into `bag`) of elements also present in `subset`;
// both sorted.
std::vector<int> PositionsOf(const std::vector<int>& bag,
                             const std::vector<int>& subset) {
  std::vector<int> positions;
  size_t j = 0;
  for (size_t i = 0; i < bag.size(); ++i) {
    while (j < subset.size() && subset[j] < bag[i]) ++j;
    if (j < subset.size() && subset[j] == bag[i]) {
      positions.push_back(static_cast<int>(i));
    }
  }
  return positions;
}

Tuple ProjectTuple(const Tuple& t, const std::vector<int>& positions) {
  Tuple out;
  out.reserve(positions.size());
  for (int p : positions) out.push_back(t[p]);
  return out;
}

using TupleIndex = std::unordered_map<Tuple, int, VectorHash<Value>>;

}  // namespace

StatusOr<CqAutomaton> BuildCountingAutomaton(
    const Query& q, const Database& db, const NiceTreeDecomposition& ntd) {
  if (q.Kind() != QueryKind::kCq) {
    return Status::InvalidArgument(
        "Lemma 52 applies to pure conjunctive queries");
  }
  Status s = q.CheckAgainstDatabase(db);
  if (!s.ok()) return s;

  const int num_nodes = ntd.num_nodes();
  const int num_free = q.num_free();

  // Per node: bag solutions, their free projections, and index maps.
  std::vector<Relation> sols(num_nodes);
  std::vector<TupleIndex> sol_index(num_nodes);
  std::vector<std::vector<int>> free_positions(num_nodes);
  std::vector<TupleIndex> label_index(num_nodes);  // projection -> label id.
  std::vector<int> state_offset(num_nodes, 0);

  bool trivially_zero = false;
  int num_states = 0;
  int num_labels = 0;
  std::vector<int> state_node;
  std::vector<int> label_node;
  for (int t = 0; t < num_nodes; ++t) {
    const auto& bag = ntd.node(t).bag;
    sols[t] = ComputeBagSolutions(q, db, bag, nullptr);
    if (sols[t].empty()) trivially_zero = true;
    state_offset[t] = num_states;
    num_states += static_cast<int>(sols[t].size());
    for (size_t i = 0; i < sols[t].size(); ++i) {
      sol_index[t].emplace(sols[t].tuples()[i], static_cast<int>(i));
      state_node.push_back(t);
    }
    // Free-variable positions inside the bag.
    for (size_t p = 0; p < bag.size(); ++p) {
      if (bag[p] < num_free) {
        free_positions[t].push_back(static_cast<int>(p));
      }
    }
    for (const Tuple& alpha : sols[t].tuples()) {
      Tuple beta = ProjectTuple(alpha, free_positions[t]);
      auto [it, inserted] = label_index[t].emplace(std::move(beta), num_labels);
      if (inserted) {
        label_node.push_back(t);
        ++num_labels;
      }
    }
  }
  if (num_states == 0 || num_labels == 0) {
    // Degenerate: no solutions anywhere. Produce a one-state automaton
    // with no transitions.
    CqAutomaton result{TreeAutomaton(1, 1, 0), LabeledTree{}, num_nodes,
                       true, {0}, {0}};
    result.tree_shape.nodes.resize(num_nodes);
    for (int t = 0; t < num_nodes; ++t) {
      result.tree_shape.nodes[t].children = ntd.node(t).children;
    }
    return result;
  }

  TreeAutomaton automaton(num_states, num_labels, state_offset[0]);
  auto state_id = [&](int t, int sol) { return state_offset[t] + sol; };
  auto label_of = [&](int t, int sol) {
    Tuple beta = ProjectTuple(sols[t].tuples()[sol], free_positions[t]);
    return label_index[t].at(beta);
  };

  for (int t = 0; t < num_nodes; ++t) {
    const auto& node = ntd.node(t);
    const auto& tuples = sols[t].tuples();
    switch (node.kind) {
      case NiceNodeKind::kLeaf: {
        // Sol_t = {empty assignment} unless globally infeasible.
        for (size_t i = 0; i < tuples.size(); ++i) {
          automaton.AddLeafTransition(state_id(t, static_cast<int>(i)),
                                      label_of(t, static_cast<int>(i)));
        }
        break;
      }
      case NiceNodeKind::kJoin: {
        const int c1 = node.children[0];
        const int c2 = node.children[1];
        for (size_t i = 0; i < tuples.size(); ++i) {
          auto it1 = sol_index[c1].find(tuples[i]);
          auto it2 = sol_index[c2].find(tuples[i]);
          if (it1 == sol_index[c1].end() || it2 == sol_index[c2].end()) {
            continue;  // Dead state.
          }
          automaton.AddBinaryTransition(
              state_id(t, static_cast<int>(i)),
              label_of(t, static_cast<int>(i)),
              state_id(c1, it1->second), state_id(c2, it2->second));
        }
        break;
      }
      case NiceNodeKind::kIntroduce: {
        // B_t = B_c + {v}: child state is the projection of alpha.
        const int c = node.children[0];
        const std::vector<int> child_positions =
            PositionsOf(node.bag, ntd.node(c).bag);
        for (size_t i = 0; i < tuples.size(); ++i) {
          Tuple proj = ProjectTuple(tuples[i], child_positions);
          auto it = sol_index[c].find(proj);
          if (it == sol_index[c].end()) continue;
          automaton.AddUnaryTransition(state_id(t, static_cast<int>(i)),
                                       label_of(t, static_cast<int>(i)),
                                       state_id(c, it->second));
        }
        break;
      }
      case NiceNodeKind::kForget: {
        // B_c = B_t + {v}: one transition per consistent child solution.
        const int c = node.children[0];
        const std::vector<int> parent_positions =
            PositionsOf(ntd.node(c).bag, node.bag);
        const auto& child_tuples = sols[c].tuples();
        for (size_t j = 0; j < child_tuples.size(); ++j) {
          Tuple proj = ProjectTuple(child_tuples[j], parent_positions);
          auto it = sol_index[t].find(proj);
          if (it == sol_index[t].end()) continue;
          automaton.AddUnaryTransition(state_id(t, it->second),
                                       label_of(t, it->second),
                                       state_id(c, static_cast<int>(j)));
        }
        break;
      }
    }
  }

  CqAutomaton result{std::move(automaton), LabeledTree{}, num_nodes,
                     trivially_zero, std::move(state_node),
                     std::move(label_node)};
  result.tree_shape.nodes.resize(num_nodes);
  for (int t = 0; t < num_nodes; ++t) {
    result.tree_shape.nodes[t].children = ntd.node(t).children;
  }
  result.tree_shape.root = 0;
  return result;
}

}  // namespace cqcount
